type judgment = {
  underlay : Layer.t;
  impl : Prog.Module.t;
  overlay : Layer.t;
  rel : Sim_rel.t;
  focus : Event.tid list;
}

type rule_name = Empty | Fun | Vcomp | Hcomp | Wk | Pcomp

type cert = {
  judgment : judgment;
  rule : rule_name;
  premises : cert list;
  evidence : string list;
}

let rule_to_string = function
  | Empty -> "Empty"
  | Fun -> "Fun"
  | Vcomp -> "Vcomp"
  | Hcomp -> "Hcomp"
  | Wk -> "Wk"
  | Pcomp -> "Pcomp"

let pp_focus fmt focus =
  Format.fprintf fmt "{%a}"
    (Format.pp_print_list
       ~pp_sep:(fun fmt () -> Format.pp_print_string fmt ",")
       Format.pp_print_int)
    focus

let rec pp_cert fmt c =
  Format.fprintf fmt "@[<v 2>%s: %s[%a] |-_%s %s : %s[%a]  (%d checks)%a@]"
    (rule_to_string c.rule) c.judgment.underlay.Layer.name pp_focus
    c.judgment.focus c.judgment.rel.Sim_rel.name
    (match Prog.Module.names c.judgment.impl with
    | [] -> "(empty)"
    | names -> String.concat "+" names)
    c.judgment.overlay.Layer.name pp_focus c.judgment.focus
    (List.length c.evidence)
    (fun fmt premises ->
      List.iter (fun p -> Format.fprintf fmt "@ %a" pp_cert p) premises)
    c.premises

type error = {
  rule : rule_name;
  message : string;
  sim_failure : Simulation.failure option;
}

let pp_error fmt e =
  Format.fprintf fmt "@[<v 2>%s rule failed: %s%a@]" (rule_to_string e.rule)
    e.message
    (fun fmt -> function
      | None -> ()
      | Some f -> Format.fprintf fmt "@ %a" Simulation.pp_failure f)
    e.sim_failure

type prim_case = {
  args : Value.t list;
  pre : (string * Value.t list) list;
}

type prim_tests = (string * prim_case list) list
type env_suite = Event.tid -> Env_context.t list

let case ?(pre = []) args = { args; pre }

let err ?sim_failure rule message = Error { rule; message; sim_failure }

let pp_case prim case =
  let pp_call (p, args) =
    Printf.sprintf "%s(%s)" p (String.concat "," (List.map Value.to_string args))
  in
  String.concat "; " (List.map pp_call (case.pre @ [ prim, case.args ]))

let calls_of_case prim case =
  Prog.seq_all
    (List.map (fun (p, args) -> Prog.call p args) (case.pre @ [ prim, case.args ]))

let empty_rule layer focus =
  {
    judgment =
      { underlay = layer; impl = Prog.Module.empty; overlay = layer; rel = Sim_rel.id; focus };
    rule = Empty;
    premises = [];
    evidence = [ "L[A] |-_id (empty) : L[A]" ];
  }

(* Check one (prim, case, tid) simulation obligation of the Fun rule: both
   sides run the precondition prefix followed by the call under test — the
   implementation side through the module, the specification side over the
   overlay interface. *)
let check_prim_case ?max_moves ~underlay ~overlay ~impl ~rel ~envs prim case i =
  match Prog.Module.find prim impl with
  | None -> Error (Fun, "module does not implement " ^ prim, None)
  | Some _ ->
    if not (Layer.has_prim prim overlay) then
      Error (Fun, "overlay has no primitive " ^ prim, None)
    else (
      let calls = calls_of_case prim case in
      match
        Simulation.check_progs ?max_moves rel ~tid:i ~impl_layer:underlay
          ~impl:(Prog.Module.link impl calls) ~spec_layer:overlay ~spec:calls
          ~envs:(envs i)
      with
      | Ok report ->
        Ok
          (Printf.sprintf "[%s]@%d: %d envs, %d moves" (pp_case prim case) i
             report.Simulation.envs_checked report.Simulation.impl_moves)
      | Error f ->
        Error
          ( Fun,
            Printf.sprintf "[%s]@%d not simulated by its specification"
              (pp_case prim case) i,
            Some f ))

let obligations_of prim_tests focus =
  List.concat_map
    (fun (prim, cases) ->
      List.concat_map
        (fun case -> List.map (fun i -> prim, case, i) focus)
        cases)
    prim_tests

let fun_rule ?max_moves ~underlay ~overlay ~impl ~rel ~focus ~prim_tests ~envs
    () =
  let rec go evidence = function
    | [] ->
      Ok
        {
          judgment = { underlay; impl; overlay; rel; focus };
          rule = Fun;
          premises = [];
          evidence = List.rev evidence;
        }
    | (prim, case, i) :: rest -> (
      match
        check_prim_case ?max_moves ~underlay ~overlay ~impl ~rel ~envs prim
          case i
      with
      | Ok line -> go (line :: evidence) rest
      | Error (rule, message, sim_failure) -> err ?sim_failure rule message)
  in
  go [] (obligations_of prim_tests focus)

let same_focus a b =
  List.sort_uniq Stdlib.compare a = List.sort_uniq Stdlib.compare b

let vcomp c1 c2 =
  if not (String.equal c1.judgment.overlay.Layer.name c2.judgment.underlay.Layer.name)
  then
    err Vcomp
      (Printf.sprintf "layers do not stack: %s is not %s"
         c1.judgment.overlay.Layer.name c2.judgment.underlay.Layer.name)
  else if not (same_focus c1.judgment.focus c2.judgment.focus) then
    err Vcomp "focused thread sets differ"
  else
    match Prog.Module.stack ~lower:c1.judgment.impl ~upper:c2.judgment.impl with
    | exception Invalid_argument msg -> err Vcomp msg
    | impl ->
      Ok
        {
          judgment =
            {
              underlay = c1.judgment.underlay;
              impl;
              overlay = c2.judgment.overlay;
              rel = Sim_rel.compose c1.judgment.rel c2.judgment.rel;
              focus = c1.judgment.focus;
            };
          rule = Vcomp;
          premises = [ c1; c2 ];
          evidence = [ "stacked " ^ c1.judgment.overlay.Layer.name ];
        }

let hcomp c1 c2 =
  if not (String.equal c1.judgment.underlay.Layer.name c2.judgment.underlay.Layer.name)
  then err Hcomp "underlays differ"
  else if not (same_focus c1.judgment.focus c2.judgment.focus) then
    err Hcomp "focused thread sets differ"
  else if not (String.equal c1.judgment.rel.Sim_rel.name c2.judgment.rel.Sim_rel.name)
  then err Hcomp "simulation relations differ"
  else
    match
      ( Prog.Module.union c1.judgment.impl c2.judgment.impl,
        Layer.union c1.judgment.overlay c2.judgment.overlay )
    with
    | exception Invalid_argument msg -> err Hcomp msg
    | impl, overlay ->
      Ok
        {
          judgment =
            {
              underlay = c1.judgment.underlay;
              impl;
              overlay;
              rel = c1.judgment.rel;
              focus = c1.judgment.focus;
            };
          rule = Hcomp;
          premises = [ c1; c2 ];
          evidence = [ "merged independent modules" ];
        }

type layer_sim = {
  lower : Layer.t;
  upper : Layer.t;
  sim_rel : Sim_rel.t;
  sim_focus : Event.tid list;
  sim_evidence : string list;
}

let layer_sim_id layer focus =
  {
    lower = layer;
    upper = layer;
    sim_rel = Sim_rel.id;
    sim_focus = focus;
    sim_evidence = [ "reflexivity" ];
  }

let check_layer_sim ?max_moves ~lower ~upper ~rel ~focus ~prim_tests ~envs () =
  let rec go evidence = function
    | [] ->
      Ok { lower; upper; sim_rel = rel; sim_focus = focus; sim_evidence = List.rev evidence }
    | (prim, case, i) :: rest -> (
      if not (Layer.has_prim prim lower) then
        err Wk ("lower interface has no primitive " ^ prim)
      else if not (Layer.has_prim prim upper) then
        err Wk ("upper interface has no primitive " ^ prim)
      else
        let calls = calls_of_case prim case in
        match
          Simulation.check_progs ?max_moves rel ~tid:i ~impl_layer:lower
            ~impl:calls ~spec_layer:upper ~spec:calls ~envs:(envs i)
        with
        | Ok report ->
          go
            (Printf.sprintf "%s@%d: %d envs" prim i report.Simulation.envs_checked
            :: evidence)
            rest
        | Error f ->
          err ~sim_failure:f Wk
            (Printf.sprintf "primitive %s of %s not simulated by %s" prim
               lower.Layer.name upper.Layer.name))
  in
  go [] (obligations_of prim_tests focus)

let wk low cert up =
  if not (String.equal low.upper.Layer.name cert.judgment.underlay.Layer.name) then
    err Wk
      (Printf.sprintf "lower simulation targets %s, certificate underlay is %s"
         low.upper.Layer.name cert.judgment.underlay.Layer.name)
  else if not (String.equal cert.judgment.overlay.Layer.name up.lower.Layer.name)
  then
    err Wk
      (Printf.sprintf "upper simulation starts at %s, certificate overlay is %s"
         up.lower.Layer.name cert.judgment.overlay.Layer.name)
  else if
    not
      (same_focus low.sim_focus cert.judgment.focus
      && same_focus cert.judgment.focus up.sim_focus)
  then err Wk "focused thread sets differ"
  else
    Ok
      {
        judgment =
          {
            underlay = low.lower;
            impl = cert.judgment.impl;
            overlay = up.upper;
            rel =
              Sim_rel.compose low.sim_rel
                (Sim_rel.compose cert.judgment.rel up.sim_rel);
            focus = cert.judgment.focus;
          };
        rule = Wk;
        premises = [ cert ];
        evidence = low.sim_evidence @ up.sim_evidence;
      }

let compat layer ~a ~b ~logs =
  let g = layer.Layer.guar and r = layer.Layer.rely in
  let check_side tids =
    Rely_guarantee.implies_on g r ~tids ~logs
  in
  if not (check_side a) then
    Error
      (Printf.sprintf "guarantee %s of threads %s does not imply rely %s"
         g.Rely_guarantee.name
         (String.concat "," (List.map string_of_int a))
         r.Rely_guarantee.name)
  else if not (check_side b) then
    Error
      (Printf.sprintf "guarantee %s of threads %s does not imply rely %s"
         g.Rely_guarantee.name
         (String.concat "," (List.map string_of_int b))
         r.Rely_guarantee.name)
  else
    Ok
      (Printf.sprintf "compat(%s[%s], %s[%s]) on %d logs" layer.Layer.name
         (String.concat "," (List.map string_of_int a))
         layer.Layer.name
         (String.concat "," (List.map string_of_int b))
         (List.length logs))

let pcomp c1 c2 ~compat_logs =
  let a = c1.judgment.focus and b = c2.judgment.focus in
  if List.exists (fun i -> List.mem i b) a then
    err Pcomp "focused thread sets are not disjoint"
  else if
    not (String.equal c1.judgment.underlay.Layer.name c2.judgment.underlay.Layer.name)
  then err Pcomp "underlays differ"
  else if
    not (String.equal c1.judgment.overlay.Layer.name c2.judgment.overlay.Layer.name)
  then err Pcomp "overlays differ"
  else if not (String.equal c1.judgment.rel.Sim_rel.name c2.judgment.rel.Sim_rel.name)
  then err Pcomp "simulation relations differ"
  else
    let overlay_logs = List.map (Sim_rel.apply c1.judgment.rel) compat_logs in
    match
      ( compat c1.judgment.underlay ~a ~b ~logs:compat_logs,
        compat c1.judgment.overlay ~a ~b ~logs:overlay_logs )
    with
    | Error msg, _ | _, Error msg -> err Pcomp msg
    | Ok e1, Ok e2 ->
      Ok
        {
          judgment = { c1.judgment with focus = a @ b };
          rule = Pcomp;
          premises = [ c1; c2 ];
          evidence = [ e1; e2 ];
        }

let focus c = c.judgment.focus

let rec count_checks c =
  List.length c.evidence + List.fold_left (fun n p -> n + count_checks p) 0 c.premises
