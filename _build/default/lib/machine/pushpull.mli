(** The push/pull shared-memory model (Sec. 3.1, Fig. 6 and Fig. 8).

    Each shared memory location is associated with an ownership status
    reconstructed from the log by the replay function [Rshared]: a [pull]
    moves a free location to "owned by [c]", after which CPU [c] may access
    its local copy; a [push] publishes the updated value and frees the
    ownership.  Pulling a non-free location, or pushing a location the
    caller does not own, is a data race: the replay function — hence the
    machine — gets stuck.  Showing a program never gets stuck is showing it
    is data-race free. *)

type ownership =
  | Free
  | Owned of Ccal_core.Event.tid

val pull_tag : string
val push_tag : string

val replay_loc :
  int -> (Ccal_core.Value.t * ownership) Ccal_core.Replay.t
(** [Rshared l b]: the current value and ownership of location [b]
    (Fig. 8); [Error] on a racy log. *)

val replay_all :
  ((int * (Ccal_core.Value.t * ownership)) list) Ccal_core.Replay.t
(** Replay every location mentioned in the log. *)

val race_free : Ccal_core.Log.t -> bool
(** No replay of any location gets stuck. *)

val pull_prim : string * Ccal_core.Layer.prim
(** [pull(b)] — appends [c.pull(b)], returns the location's current value
    and {e enters the critical state} (the machine stops querying its
    environment until the matching [push], Sec. 3.2). Stuck on a race. *)

val push_prim : string * Ccal_core.Layer.prim
(** [push(b, v)] — appends [c.push(b,v)], publishing [v] as the new value
    of [b], frees the ownership and exits the critical state. *)

val prims : (string * Ccal_core.Layer.prim) list
