lib/machine/asm_sem.mli: Asm Ccal_core
