lib/machine/pushpull.ml: Ccal_core Event Int Layer Log Map Printf Replay Result String Value
