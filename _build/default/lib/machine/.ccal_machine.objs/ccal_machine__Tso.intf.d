lib/machine/tso.mli: Ccal_core Event Layer Prog Replay Sched Sim_rel
