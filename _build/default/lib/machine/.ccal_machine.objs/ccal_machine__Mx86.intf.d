lib/machine/mx86.mli: Ccal_core
