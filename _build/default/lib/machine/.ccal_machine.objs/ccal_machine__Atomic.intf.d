lib/machine/atomic.mli: Ccal_core
