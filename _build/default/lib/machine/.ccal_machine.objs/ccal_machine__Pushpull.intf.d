lib/machine/pushpull.mli: Ccal_core
