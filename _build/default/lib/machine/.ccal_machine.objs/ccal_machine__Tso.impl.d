lib/machine/tso.ml: Atomic Ccal_core Event Format Game Int Layer List Log Map Mx86 Option Printf Pushpull Replay Result Sched Sim_rel Stdlib String Value
