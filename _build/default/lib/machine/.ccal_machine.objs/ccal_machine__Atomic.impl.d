lib/machine/atomic.ml: Ccal_core Event Int Layer List Map Option Printf Replay Result String Value
