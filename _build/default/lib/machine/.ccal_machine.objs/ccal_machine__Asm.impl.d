lib/machine/asm.ml: Format List
