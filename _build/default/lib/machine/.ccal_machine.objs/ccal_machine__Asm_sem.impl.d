lib/machine/asm_sem.ml: Array Asm Ccal_core Int List Map Option Prog String Value
