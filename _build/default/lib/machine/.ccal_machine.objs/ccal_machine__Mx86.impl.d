lib/machine/mx86.ml: Atomic Ccal_core Event Game Layer Printf Pushpull Refinement Sched Sim_rel Value
