(** Small-step semantics of the assembly language as interaction trees.

    An assembly function denotes a program over a layer interface
    ({!Ccal_core.Prog.t}): register moves, arithmetic, frame accesses and
    jumps are silent; [CallPrim] is a call to a layer primitive (a query
    point when the primitive is shared).  This is the analogue of the
    paper's per-function assembly machine: code verified over a layer
    interface and composed with the [Fun] rule (Sec. 3.3, [LκM_{L[c]}]). *)

exception Compile_error of string
(** Raised when a function is malformed (duplicate or missing labels). *)

val fault_prim : string
(** Name of the pseudo-primitive called on faults (division by zero,
    ill-typed operand, [Halt], or exhausted instruction budget).  No layer
    defines it, so the machine gets stuck with a readable diagnostic —
    matching the paper's "the machine gets stuck" on invalid transitions. *)

val prog_of_fn :
  ?fuel:int -> Asm.fn -> Ccal_core.Value.t list -> Ccal_core.Prog.t
(** [prog_of_fn fn args] is the denotation of calling [fn] on [args];
    [fuel] (default 1_000_000) bounds the number of executed instructions
    so that a silent divergence becomes a fault rather than a hang. *)

val module_of_fns : ?fuel:int -> Asm.fn list -> Ccal_core.Prog.Module.t
(** The module [M] collecting the given functions. *)
