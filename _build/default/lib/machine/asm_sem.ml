open Ccal_core

exception Compile_error of string

let fault_prim = "asm_fault"

module Imap = Map.Make (Int)
module Smap = Map.Make (String)

type frame = {
  regs : Value.t array;  (* indexed by register *)
  mem : Value.t Imap.t;  (* frame slots *)
  stack : Value.t list;
}

let reg_index = function
  | Asm.EAX -> 0
  | Asm.EBX -> 1
  | Asm.ECX -> 2
  | Asm.EDX -> 3
  | Asm.ESI -> 4
  | Asm.EDI -> 5

let label_map body =
  let map, _ =
    List.fold_left
      (fun (map, pc) instr ->
        match instr with
        | Asm.Label l ->
          if Smap.mem l map then
            raise (Compile_error ("duplicate label " ^ l))
          else Smap.add l pc map, pc + 1
        | _ -> map, pc + 1)
      (Smap.empty, 0) body
  in
  map

let eval_binop op a b =
  let bool_int c = if c then 1 else 0 in
  match op with
  | Asm.Add -> Some (a + b)
  | Asm.Sub -> Some (a - b)
  | Asm.Mul -> Some (a * b)
  | Asm.Div -> if b = 0 then None else Some (a / b)
  | Asm.Mod -> if b = 0 then None else Some (a mod b)
  | Asm.Eq -> Some (bool_int (a = b))
  | Asm.Ne -> Some (bool_int (a <> b))
  | Asm.Lt -> Some (bool_int (a < b))
  | Asm.Le -> Some (bool_int (a <= b))
  | Asm.Gt -> Some (bool_int (a > b))
  | Asm.Ge -> Some (bool_int (a >= b))
  | Asm.And -> Some (bool_int (a <> 0 && b <> 0))
  | Asm.Or -> Some (bool_int (a <> 0 || b <> 0))

let prog_of_fn ?(fuel = 1_000_000) (fn : Asm.fn) args =
  let code = Array.of_list fn.body in
  let labels = label_map fn.body in
  (* A fault is a call to an undefined primitive carrying the message in
     its name, so the layer machine reports it verbatim. *)
  let fault msg = Prog.call (fault_prim ^ ": " ^ fn.name ^ ": " ^ msg) [] in
  let init_frame =
    let mem =
      List.fold_left
        (fun (m, i) v -> Imap.add i v m, i + 1)
        (Imap.empty, 0) args
      |> fst
    in
    { regs = Array.make 6 Value.unit; mem; stack = [] }
  in
  let read_operand fr = function
    | Asm.Imm n -> Value.int n
    | Asm.Reg r -> fr.regs.(reg_index r)
  in
  let operand_int fr o =
    match read_operand fr o with
    | Value.Vint n -> Some n
    | Value.Vbool b -> Some (if b then 1 else 0)
    | _ -> None
  in
  let set_reg fr r v =
    let regs = Array.copy fr.regs in
    regs.(reg_index r) <- v;
    { fr with regs }
  in
  let rec exec pc fr fuel =
    if fuel <= 0 then fault Prog.steps_bound_exceeded
    else if pc < 0 || pc >= Array.length code then
      fault "fell off the end of the code"
    else
      let continue fr' = exec (pc + 1) fr' (fuel - 1) in
      match code.(pc) with
      | Asm.Label _ -> continue fr
      | Asm.Mov (r, o) -> continue (set_reg fr r (read_operand fr o))
      | Asm.Op (op, r, o) -> (
        match fr.regs.(reg_index r), operand_int fr o with
        | Value.Vint a, Some b -> (
          match eval_binop op a b with
          | Some result -> continue (set_reg fr r (Value.int result))
          | None -> fault "division by zero")
        | _ -> fault "ill-typed arithmetic operand")
      | Asm.Load (r, o) -> (
        match operand_int fr o with
        | Some addr ->
          let v = Option.value ~default:Value.unit (Imap.find_opt addr fr.mem) in
          continue (set_reg fr r v)
        | None -> fault "ill-typed load address")
      | Asm.Store (a, vo) -> (
        match operand_int fr a with
        | Some addr ->
          continue { fr with mem = Imap.add addr (read_operand fr vo) fr.mem }
        | None -> fault "ill-typed store address")
      | Asm.Push o -> continue { fr with stack = read_operand fr o :: fr.stack }
      | Asm.Pop r -> (
        match fr.stack with
        | v :: stack -> continue (set_reg { fr with stack } r v)
        | [] -> fault "pop from empty stack")
      | Asm.Jmp l -> jump fr l fuel
      | Asm.Jnz (o, l) -> (
        match operand_int fr o with
        | Some 0 -> continue fr
        | Some _ -> jump fr l fuel
        | None -> fault "ill-typed branch operand")
      | Asm.Jz (o, l) -> (
        match operand_int fr o with
        | Some 0 -> jump fr l fuel
        | Some _ -> continue fr
        | None -> fault "ill-typed branch operand")
      | Asm.CallPrim (p, nargs) ->
        if List.length fr.stack < nargs then fault "not enough call arguments"
        else
          let rec split n acc stack =
            if n = 0 then acc, stack
            else
              match stack with
              | v :: rest -> split (n - 1) (v :: acc) rest
              | [] -> assert false
          in
          (* First pushed = first argument: popping reverses, so [split]
             rebuilds the original order. *)
          let call_args, stack = split nargs [] fr.stack in
          Prog.Call
            {
              prim = p;
              args = call_args;
              k =
                (fun v ->
                  exec (pc + 1) (set_reg { fr with stack } Asm.EAX v) (fuel - 1));
            }
      | Asm.Ret o -> Prog.Ret (read_operand fr o)
      | Asm.RetVoid -> Prog.ret_unit
      | Asm.Halt msg -> fault msg
  and jump fr l fuel =
    match Smap.find_opt l labels with
    | Some pc -> exec pc fr (fuel - 1)
    | None -> fault ("unknown label " ^ l)
  in
  exec 0 init_frame fuel

let module_of_fns ?fuel fns =
  Prog.Module.of_bodies
    (List.map (fun (fn : Asm.fn) -> fn.name, prog_of_fn ?fuel fn) fns)
