(* Syntax of the x86-like assembly language of the machine model
   (Sec. 3.1).  Functions follow a simple calling convention: the [arity]
   arguments are available in frame slots [0 .. arity-1] on entry;
   primitive calls pop their arguments from the operand stack (first pushed
   = first argument) and leave the result in [EAX]. *)

type reg = EAX | EBX | ECX | EDX | ESI | EDI

type operand =
  | Imm of int
  | Reg of reg

type binop =
  | Add
  | Sub
  | Mul
  | Div
  | Mod
  | Eq
  | Ne
  | Lt
  | Le
  | Gt
  | Ge
  | And
  | Or

type instr =
  | Mov of reg * operand  (* reg := operand *)
  | Op of binop * reg * operand  (* reg := reg op operand *)
  | Load of reg * operand  (* reg := frame[operand] *)
  | Store of operand * operand  (* frame[addr] := value *)
  | Push of operand
  | Pop of reg
  | Jmp of string
  | Jnz of operand * string  (* jump if operand <> 0 *)
  | Jz of operand * string
  | Label of string
  | CallPrim of string * int  (* call a layer primitive with n stack args *)
  | Ret of operand
  | RetVoid  (* return from a void function *)
  | Halt of string  (* fault with a diagnostic *)

type fn = {
  name : string;
  arity : int;
  body : instr list;
}

let pp_reg fmt r =
  Format.pp_print_string fmt
    (match r with
    | EAX -> "eax"
    | EBX -> "ebx"
    | ECX -> "ecx"
    | EDX -> "edx"
    | ESI -> "esi"
    | EDI -> "edi")

let pp_operand fmt = function
  | Imm n -> Format.fprintf fmt "$%d" n
  | Reg r -> pp_reg fmt r

let binop_name = function
  | Add -> "add"
  | Sub -> "sub"
  | Mul -> "imul"
  | Div -> "idiv"
  | Mod -> "mod"
  | Eq -> "sete"
  | Ne -> "setne"
  | Lt -> "setl"
  | Le -> "setle"
  | Gt -> "setg"
  | Ge -> "setge"
  | And -> "and"
  | Or -> "or"

let pp_instr fmt = function
  | Mov (r, o) -> Format.fprintf fmt "  mov %a, %a" pp_reg r pp_operand o
  | Op (op, r, o) ->
    Format.fprintf fmt "  %s %a, %a" (binop_name op) pp_reg r pp_operand o
  | Load (r, o) -> Format.fprintf fmt "  load %a, [%a]" pp_reg r pp_operand o
  | Store (a, v) -> Format.fprintf fmt "  store [%a], %a" pp_operand a pp_operand v
  | Push o -> Format.fprintf fmt "  push %a" pp_operand o
  | Pop r -> Format.fprintf fmt "  pop %a" pp_reg r
  | Jmp l -> Format.fprintf fmt "  jmp %s" l
  | Jnz (o, l) -> Format.fprintf fmt "  jnz %a, %s" pp_operand o l
  | Jz (o, l) -> Format.fprintf fmt "  jz %a, %s" pp_operand o l
  | Label l -> Format.fprintf fmt "%s:" l
  | CallPrim (p, n) -> Format.fprintf fmt "  call %s/%d" p n
  | Ret o -> Format.fprintf fmt "  ret %a" pp_operand o
  | RetVoid -> Format.pp_print_string fmt "  ret"
  | Halt msg -> Format.fprintf fmt "  halt \"%s\"" msg

let pp_fn fmt fn =
  Format.fprintf fmt "@[<v>%s(%d):@ %a@]" fn.name fn.arity
    (Format.pp_print_list ~pp_sep:Format.pp_print_cut pp_instr)
    fn.body

let size fn = List.length fn.body
