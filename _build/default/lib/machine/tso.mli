(** A total-store-order (x86-TSO) variant of the atomic-cell layer —
    the paper's future work.

    Sec. 6 (Limitations): "Our concurrent machine models assume strong
    sequential consistency for atomic primitives.  Previous work
    demonstrated that race-free programs on a TSO model do indeed behave
    as if executing on a sequentially consistent machine ... we believe
    extending our work from SC to TSO is promising."

    This module implements that extension for the cell layer: plain
    stores go into a per-CPU store buffer (a [buf_store] event); loads
    forward from the own buffer before reading memory; read-modify-write
    primitives ([faa]/[xchg]/[cas]) and the explicit [mfence] drain the
    caller's buffer first (each drained write is a [commit] event) — the
    essential rules of x86-TSO.  Everything is replayed from the log, so
    the buffers are never stored either.

    Checks built on top (see the test-suite):
    {ul
    {- the store-buffering litmus test distinguishes the machines: the
       outcome [r1 = r2 = 0] is reachable on TSO but not on SC;}
    {- with an [mfence] between the store and the load, TSO re-converges
       with SC;}
    {- push/pull-disciplined (race-free) programs have the same behaviour
       sets on both machines ({!sc_equivalent_on}), the Sewell et al.
       result the paper leans on.}} *)

open Ccal_core

val buf_store_tag : string
(** A store that entered the caller's store buffer. *)

val commit_tag : string
(** A buffered store reaching shared memory (emitted when the buffer is
    drained). *)

val mfence_tag : string

val replay_memory : int -> int Replay.t
(** Value of cell [b] in shared memory: [commit] events plus the
    SC operations ([faa]/[xchg]/[cas]/[astore] of {!Atomic}). *)

val replay_buffer : Event.tid -> (int * int) list Replay.t
(** The pending (cell, value) writes of a CPU's store buffer, oldest
    first. *)

val layer : unit -> Layer.t
(** The TSO hardware layer: [aload]/[astore]/[faa]/[xchg]/[cas] with
    store-buffer semantics, [mfence], plus the push/pull primitives and
    [cpuid] unchanged (pull/push are synchronisation primitives and drain
    the buffer like fences). *)

val sc_equivalent_on :
  ?max_steps:int ->
  threads:(Event.tid * Prog.t) list ->
  scheds:Sched.t list ->
  unit ->
  (int, string) result
(** Run the same program on the TSO layer and on the SC layer ({!Mx86})
    under each scheduler, erase the buffering events ([buf_store] pairs
    with its [commit]; fences vanish), and require identical logs and
    results — the executable form of "race-free programs on TSO behave as
    if executing on a sequentially consistent machine". *)

val erase_buffering : Sim_rel.t
(** [commit ↦ astore], [buf_store]/[mfence] ↦ ε: the relation under which
    a TSO log reads as an SC log. *)
