open Ccal_core

let faa_tag = "faa"
let xchg_tag = "xchg"
let cas_tag = "cas"
let aload_tag = "aload"
let astore_tag = "astore"

module Imap = Map.Make (Int)

let replay_cells : int Imap.t Replay.t =
  Replay.fold ~init:Imap.empty ~step:(fun m (e : Event.t) ->
      let get b = Option.value ~default:0 (Imap.find_opt b m) in
      match e.tag, e.args with
      | tag, [ Value.Vint b; Value.Vint d ] when String.equal tag faa_tag ->
        Ok (Imap.add b (get b + d) m)
      | tag, [ Value.Vint b; Value.Vint v ] when String.equal tag xchg_tag ->
        Ok (Imap.add b v m)
      | tag, [ Value.Vint b; Value.Vint expected; Value.Vint v ]
        when String.equal tag cas_tag ->
        if get b = expected then Ok (Imap.add b v m) else Ok m
      | tag, [ Value.Vint b; Value.Vint v ] when String.equal tag astore_tag ->
        Ok (Imap.add b v m)
      | _ -> Ok m)

let replay_cell b : int Replay.t =
 fun l ->
  Result.map (fun m -> Option.value ~default:0 (Imap.find_opt b m)) (replay_cells l)

(* An atomic operation computes its return value from the replayed state of
   the log it extends. *)
let atomic_prim tag arity ret_of =
  ( tag,
    Layer.Shared
      (fun c args log ->
        if List.length args <> arity then
          Layer.Stuck (Printf.sprintf "%s: expected %d arguments" tag arity)
        else
          match args with
          | Value.Vint b :: _ -> (
            match replay_cell b log with
            | Error msg -> Layer.Stuck msg
            | Ok old ->
              let ret = ret_of old in
              let ev = Event.make ~args ~ret c tag in
              Layer.Step { events = [ ev ]; ret; crit = Layer.Keep })
          | _ -> Layer.Stuck (tag ^ ": expected a cell location")) )

let faa = atomic_prim faa_tag 2 Value.int
let xchg = atomic_prim xchg_tag 2 Value.int
let cas = atomic_prim cas_tag 3 Value.int
let aload = atomic_prim aload_tag 1 Value.int
let astore = atomic_prim astore_tag 2 (fun _ -> Value.unit)

let prims = [ faa; xchg; cas; aload; astore ]
