lib/verify/explore.ml: Ccal_core Game List Log Sched
