lib/verify/races.ml: Ccal_core Ccal_machine Game List Log Printf Sched String
