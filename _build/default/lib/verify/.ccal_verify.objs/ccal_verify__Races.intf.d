lib/verify/races.mli: Ccal_core Event Layer Log Prog Sched
