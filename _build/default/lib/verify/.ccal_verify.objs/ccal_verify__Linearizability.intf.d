lib/verify/linearizability.mli: Calculus Ccal_core Event Layer Prog Refinement Sched Sim_rel
