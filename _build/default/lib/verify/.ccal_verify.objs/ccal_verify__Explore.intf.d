lib/verify/explore.mli: Ccal_core Event Game Layer Log Prog Sched
