lib/verify/stack.mli: Calculus Ccal_core Format
