lib/verify/linearizability.ml: Calculus Ccal_core List Log Refinement
