lib/verify/progress.mli: Ccal_core Event Layer Log Prog Sched
