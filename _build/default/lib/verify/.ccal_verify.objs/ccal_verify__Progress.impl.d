lib/verify/progress.ml: Array Ccal_core Event Game List Log Printf Sched Stdlib String Value
