(** Linearizability as contextual refinement.

    Filipovic et al. showed linearizability is equivalent to contextual
    refinement, and Liang et al. extended the equivalence to progress
    properties (Sec. 7, "Abstraction for Concurrent Objects") — which is
    why CCAL proves contextual refinement and gets linearizability for
    free.  This checker follows the same route executably: a concurrent
    object is linearizable on a workload when every underlay log, produced
    under a scheduler suite, translates to a log the atomic overlay machine
    reproduces with the same per-thread results. *)

open Ccal_core

type report = {
  runs : int;
  distinct_logs : int;
  events : int;  (** total underlay events observed *)
}

val check :
  ?max_steps:int ->
  underlay:Layer.t ->
  impl:Prog.Module.t ->
  overlay:Layer.t ->
  rel:Sim_rel.t ->
  client:(Event.tid -> Prog.t) ->
  tids:Event.tid list ->
  scheds:Sched.t list ->
  unit ->
  (report, Refinement.failure) result

val check_cert :
  ?max_steps:int ->
  Calculus.cert ->
  client:(Event.tid -> Prog.t) ->
  scheds:Sched.t list ->
  (report, Refinement.failure) result
