open Ccal_core

type report = {
  runs : int;
  distinct_logs : int;
  events : int;
}

let check ?max_steps ~underlay ~impl ~overlay ~rel ~client ~tids ~scheds () =
  match
    Refinement.check ?max_steps ~underlay ~impl ~overlay ~rel ~client ~tids
      ~scheds ()
  with
  | Error _ as e -> e
  | Ok r ->
    let logs = r.Refinement.logs in
    let rec dedup acc = function
      | [] -> acc
      | l :: rest ->
        if List.exists (Log.equal l) acc then dedup acc rest
        else dedup (l :: acc) rest
    in
    Ok
      {
        runs = r.Refinement.scheds_checked;
        distinct_logs = List.length (dedup [] logs);
        events = List.fold_left (fun n l -> n + Log.length l) 0 logs;
      }

let check_cert ?max_steps (cert : Calculus.cert) ~client ~scheds =
  check ?max_steps ~underlay:cert.Calculus.judgment.Calculus.underlay
    ~impl:cert.Calculus.judgment.Calculus.impl
    ~overlay:cert.Calculus.judgment.Calculus.overlay
    ~rel:cert.Calculus.judgment.Calculus.rel ~client
    ~tids:cert.Calculus.judgment.Calculus.focus ~scheds ()
