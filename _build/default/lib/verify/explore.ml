open Ccal_core

let exhaustive_scheds ~tids ~depth =
  let rec traces d =
    if d = 0 then [ [] ]
    else
      let shorter = traces (d - 1) in
      List.concat_map (fun t -> List.map (fun tr -> t :: tr) shorter) tids
  in
  List.map (fun tr -> Sched.of_trace tr) (traces depth)

let random_scheds ~count = List.init count (fun k -> Sched.random ~seed:(k + 1))

let full_suite ~tids ?(depth = 4) ?(random = 16) () =
  (Sched.round_robin :: exhaustive_scheds ~tids ~depth) @ random_scheds ~count:random

let run_all ?max_steps layer threads scheds =
  Game.behaviors ?max_steps layer threads scheds

let all_logs outcomes = List.map (fun o -> o.Game.log) outcomes

let count_distinct_logs outcomes =
  let logs = all_logs outcomes in
  let rec dedup acc = function
    | [] -> acc
    | l :: rest ->
      if List.exists (Log.equal l) acc then dedup acc rest
      else dedup (l :: acc) rest
  in
  List.length (dedup [] logs)
