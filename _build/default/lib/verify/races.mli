(** Data-race detection through the push/pull memory model.

    "If a program tries to pull a not-free location, or tries to access or
    push to a location not owned by the current CPU, a data race may occur
    and the machine gets stuck.  One goal of concurrent program
    verification is to show that a program is data-race free; in our
    setting, we accomplish this by showing that the program does not get
    stuck" (Sec. 3.1). *)

open Ccal_core

type verdict =
  | Race_free of { runs : int }
  | Race of { sched_name : string; detail : string; log : Log.t }
  | Other_failure of string

val check :
  ?max_steps:int ->
  Layer.t ->
  (Event.tid * Prog.t) list ->
  Sched.t list ->
  verdict
(** Run the machine under each scheduler; a [Stuck] status whose
    diagnostic is a push/pull ownership violation is reported as a race;
    completed runs are additionally re-validated with
    {!Ccal_machine.Pushpull.race_free}. *)
