(** Interleaving exploration.

    The behaviour of a layer machine is the set of logs under {e all}
    schedulers (Sec. 2); the checkers approximate the quantifier by
    exhaustively enumerating scheduling prefixes up to a depth bound and
    topping up with seeded random fair schedules.  This is the bounded
    substitute for the paper's ∀-quantified Coq proofs (DESIGN.md,
    Substitutions). *)

open Ccal_core

val exhaustive_scheds : tids:Event.tid list -> depth:int -> Sched.t list
(** All [|tids|^depth] scheduling prefixes (round-robin afterwards).
    Use small depths: the count is exponential. *)

val random_scheds : count:int -> Sched.t list
(** [count] seeded random schedulers (deterministic suite). *)

val full_suite : tids:Event.tid list -> ?depth:int -> ?random:int -> unit -> Sched.t list
(** Exhaustive prefixes (default depth 4) plus random schedules (default
    16) plus round-robin. *)

val run_all :
  ?max_steps:int ->
  Layer.t ->
  (Event.tid * Prog.t) list ->
  Sched.t list ->
  Game.outcome list
(** Run the machine under every scheduler. *)

val all_logs : Game.outcome list -> Log.t list
val count_distinct_logs : Game.outcome list -> int
(** Number of distinct interleavings actually observed. *)
