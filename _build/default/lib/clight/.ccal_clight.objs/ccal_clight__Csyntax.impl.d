lib/clight/csyntax.ml: Format Stdlib String
