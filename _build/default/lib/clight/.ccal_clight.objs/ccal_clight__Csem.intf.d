lib/clight/csem.mli: Ccal_core Csyntax
