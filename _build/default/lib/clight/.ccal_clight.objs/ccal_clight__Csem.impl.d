lib/clight/csem.ml: Ccal_core Csyntax List Map Printf Prog String Value
