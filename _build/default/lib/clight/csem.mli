(** Semantics of ClightX as interaction trees.

    A ClightX function denotes a program over its underlay interface
    ({!Ccal_core.Prog.t}): expression evaluation and assignments are
    silent; [Scall] invokes a layer primitive (a query point when the
    primitive is shared).  This is the executable analogue of the paper's
    ClightX abstract machines, over which C layer code is verified before
    being compiled by CompCertX (Sec. 5.5). *)

exception Semantics_error of string
(** Raised on statically malformed functions (e.g. a parameter/local name
    clash); dynamic errors fault like the assembly semantics. *)

val fault_prim : string
(** Name prefix of the pseudo-primitive called on dynamic faults (unbound
    variable, division by zero, non-integer branch condition, statement
    budget exhausted); no layer defines it, so the machine reports the
    diagnostic and gets stuck. *)

val prog_of_fn :
  ?fuel:int -> Csyntax.fn -> Ccal_core.Value.t list -> Ccal_core.Prog.t
(** [prog_of_fn fn args] denotes calling [fn] on [args].  Arguments bind to
    parameters positionally (missing arguments fault); [fuel] (default
    1_000_000) bounds executed statements. *)

val module_of_fns : ?fuel:int -> Csyntax.fn list -> Ccal_core.Prog.Module.t
(** The module [M] collecting the given C functions — e.g. the paper's
    [M1 := acq ⊕ rel] (Sec. 2). *)
