(* ccal — command-line driver for the CCAL reproduction.

   Subcommands:
     ccal stack     verify the whole Fig. 1 layer stack
     ccal verify    certify one object (ticket, mcs, local-queue,
                    shared-queue, qlock, ipc, all)
     ccal pipeline  run the Fig. 5 ticket-lock pipeline with soundness
     ccal inventory print the layer/object inventory *)

open Cmdliner
open Ccal_core
open Ccal_objects

let vi = Value.int

(* ---------------- stack ---------------- *)

let stack_cmd =
  let run lock seeds =
    let lock = match lock with "mcs" -> `Mcs | _ -> `Ticket in
    match Ccal_verify.Stack.verify_all ~lock ~seeds () with
    | Ok report ->
      Format.printf "%a@." Ccal_verify.Stack.pp_report report;
      0
    | Error msg ->
      Format.eprintf "stack verification failed: %s@." msg;
      1
  in
  let lock =
    Arg.(value & opt string "ticket"
         & info [ "lock" ] ~docv:"IMPL" ~doc:"Spinlock implementation (ticket|mcs).")
  in
  let seeds =
    Arg.(value & opt int 4
         & info [ "seeds" ] ~docv:"N" ~doc:"Random schedulers per check.")
  in
  Cmd.v
    (Cmd.info "stack" ~doc:"Certify and link the whole Fig. 1 layer stack")
    Term.(const run $ lock $ seeds)

(* ---------------- verify ---------------- *)

let verify_one name =
  let show = function
    | Ok cert ->
      Format.printf "%a@." Calculus.pp_cert cert;
      true
    | Error e ->
      Format.printf "%a@." Calculus.pp_error e;
      false
  in
  match name with
  | "ticket" -> show (Ticket_lock.certify ~focus:[ 1; 2 ] ())
  | "mcs" -> show (Mcs_lock.certify ~focus:[ 1; 2 ] ())
  | "local-queue" -> show (Queue_local.certify ())
  | "shared-queue" -> show (Queue_shared.certify ())
  | "queue-stack" -> show (Queue_shared.full_stack_certify ())
  | "qlock" -> show (Qlock.certify ())
  | "ipc" -> show (Ipc.certify ())
  | "rwlock" -> show (Rwlock.certify ())
  | other ->
    Format.eprintf "unknown object %S@." other;
    false

let objects =
  [ "ticket"; "mcs"; "local-queue"; "shared-queue"; "queue-stack"; "qlock";
    "ipc"; "rwlock" ]

let verify_cmd =
  let run name =
    let names = if name = "all" then objects else [ name ] in
    let ok = List.for_all (fun n ->
        Format.printf "== %s ==@." n;
        verify_one n) names
    in
    if ok then 0 else 1
  in
  let obj_arg =
    Arg.(value & pos 0 string "all"
         & info [] ~docv:"OBJECT"
             ~doc:"Object to certify: ticket, mcs, local-queue, shared-queue, \
                   queue-stack, qlock, ipc, or all.")
  in
  Cmd.v
    (Cmd.info "verify" ~doc:"Build the certificate for one object")
    Term.(const run $ obj_arg)

(* ---------------- pipeline ---------------- *)

let pipeline_cmd =
  let run seeds =
    match Ticket_lock.certify ~focus:[ 1; 2 ] () with
    | Error e ->
      Format.eprintf "%a@." Calculus.pp_error e;
      1
    | Ok cert -> (
      Format.printf "%a@.@." Calculus.pp_cert cert;
      let client i =
        Prog.bind (Prog.call "acq" [ vi 0 ]) (fun _ ->
            Prog.seq (Prog.call "rel" [ vi 0; vi i ]) (Prog.ret (vi i)))
      in
      match
        Refinement.check_cert cert ~client ~scheds:(Sched.default_suite ~seeds)
      with
      | Ok r ->
        Format.printf "soundness: %d schedules refined -- OK@."
          r.Refinement.scheds_checked;
        0
      | Error f ->
        Format.eprintf "%a@." Refinement.pp_failure f;
        1)
  in
  let seeds =
    Arg.(value & opt int 8 & info [ "seeds" ] ~docv:"N" ~doc:"Random schedulers.")
  in
  Cmd.v
    (Cmd.info "pipeline" ~doc:"Run the Fig. 5 ticket-lock pipeline end to end")
    Term.(const run $ seeds)

(* ---------------- inventory ---------------- *)

let inventory_cmd =
  let run () =
    let layer_line (l : Layer.t) =
      Format.printf "  %-12s %s@." l.Layer.name
        (String.concat ", " (Layer.prim_names l))
    in
    Format.printf "layer interfaces (bottom to top):@.";
    layer_line (Ccal_machine.Mx86.layer ());
    layer_line (Ticket_lock.l0 ());
    layer_line (Ticket_lock.overlay ());
    layer_line (Queue_shared.underlay ());
    layer_line (Queue_shared.overlay ());
    layer_line (Qlock.overlay ());
    layer_line (Ipc.overlay ());
    Format.printf "@.objects: %s@." (String.concat ", " objects);
    0
  in
  Cmd.v
    (Cmd.info "inventory" ~doc:"Print the layer and object inventory")
    Term.(const run $ const ())

let () =
  let doc = "certified concurrent abstraction layers (PLDI'18 reproduction)" in
  exit
    (Cmd.eval'
       (Cmd.group
          (Cmd.info "ccal" ~version:"1.0.0" ~doc)
          [ stack_cmd; verify_cmd; pipeline_cmd; inventory_cmd ]))
