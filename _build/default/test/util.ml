(* Shared helpers for the test-suite. *)
open Ccal_core

let vi = Value.int
let ev ?args ?ret src tag = Event.make ?args ?ret src tag

let log_of events = Log.append_all events Log.empty

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let check_string = Alcotest.(check string)

let value_testable = Alcotest.testable Value.pp Value.equal
let log_testable = Alcotest.testable Log.pp Log.equal
let event_testable = Alcotest.testable Event.pp Event.equal

let tc name f = Alcotest.test_case name `Quick f

let qtc ?(count = 200) name gen prop =
  QCheck_alcotest.to_alcotest (QCheck.Test.make ~count ~name gen prop)

(* Run a single-threaded program over a layer with a silent environment. *)
let run_solo ?(tid = 1) layer prog =
  Machine.run_local layer tid ~env:Env_context.empty prog

let expect_done ?(tid = 1) layer prog =
  match (run_solo ~tid layer prog).Machine.outcome with
  | Machine.Done v -> v
  | Machine.Stuck_run msg -> Alcotest.failf "stuck: %s" msg
  | Machine.No_progress msg -> Alcotest.failf "no progress: %s" msg
  | Machine.Out_of_fuel -> Alcotest.fail "out of fuel"

let expect_stuck ?(tid = 1) layer prog =
  match (run_solo ~tid layer prog).Machine.outcome with
  | Machine.Stuck_run msg -> msg
  | Machine.Done v -> Alcotest.failf "expected stuck, got %s" (Value.to_string v)
  | Machine.No_progress msg -> Alcotest.failf "expected stuck, blocked: %s" msg
  | Machine.Out_of_fuel -> Alcotest.fail "expected stuck, ran out of fuel"

(* A tiny "counter" layer used by many core tests: one shared atomic
   counter per id replayed from its own events, plus a private accumulator. *)
let counter_layer () =
  let count_of id log =
    Log.count
      (fun (e : Event.t) ->
        String.equal e.tag "tick" && e.args = [ Value.int id ])
      log
  in
  Layer.make "Lcounter"
    [
      Layer.event_prim "tick" (fun _ args log ->
          match args with
          | [ Value.Vint id ] -> Ok (Value.int (count_of id log + 1))
          | _ -> Error "tick: bad args");
      Layer.event_prim "read" (fun _ args log ->
          match args with
          | [ Value.Vint id ] -> Ok (Value.int (count_of id log))
          | _ -> Error "read: bad args");
      Layer.private_prim "stash" (fun _ args abs ->
          match args with
          | [ v ] -> Ok (Abs.set "stash" v abs, Value.unit)
          | _ -> Error "stash: bad args");
      Layer.private_prim "unstash" (fun _ _ abs -> Ok (abs, Abs.get "stash" abs));
    ]
