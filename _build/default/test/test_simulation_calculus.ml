(* Tests for Sim_rel, Simulation (Def. 2.1), the layer calculus (Fig. 9)
   and Refinement (Thm 2.2) on small synthetic layers (S6, S7, S8). *)
open Ccal_core
open Util

(* Underlay: per-thread counter ticks.  Overlay: an atomic [bump2] that
   advances the caller's counter by two in one event.  Module: bump2 =
   tick; tick.  Relation: a stateful scan pairing each thread's ticks and
   renaming the second of each pair to [bump2]. *)
let bump2_tag = "bump2"

let own_count tag c id log =
  Log.count
    (fun (e : Event.t) ->
      e.src = c && String.equal e.tag tag && e.args = [ Value.int id ])
    log

let under_layer () =
  Layer.make "Ltick"
    [
      Layer.event_prim "tick" (fun c args log ->
          match args with
          | [ Value.Vint id ] -> Ok (vi (own_count "tick" c id log + 1))
          | _ -> Error "tick: bad args");
    ]

let over_layer () =
  Layer.make "Lbump"
    [
      Layer.event_prim bump2_tag (fun c args log ->
          match args with
          | [ Value.Vint id ] -> Ok (vi (2 * (own_count bump2_tag c id log + 1)))
          | _ -> Error "bump2: bad args");
    ]

let bump_module () =
  Prog.Module.of_bodies
    [ ( bump2_tag,
        fun args ->
          Prog.seq (Prog.call "tick" args) (Prog.call "tick" args) ) ]

(* Per-thread stateful translation: each thread's ticks pair up; the pair
   becomes one bump2 whose ret is the second tick's ret. *)
let r_bump =
  Sim_rel.of_log_fn "R_bump" (fun log ->
      let step (firsts, out) (e : Event.t) =
        if String.equal e.tag "tick" then
          match List.assoc_opt e.src firsts with
          | None -> (e.src, e) :: firsts, out
          | Some _ ->
            List.remove_assoc e.src firsts,
            { e with Event.tag = bump2_tag } :: out
        else firsts, e :: out
      in
      let _, out = List.fold_left step ([], []) (Log.chronological log) in
      Log.append_all (List.rev out) Log.empty)

let test_sim_rel_table () =
  let r = Sim_rel.of_table "r" [ "a", `To "b"; "c", `Drop ] in
  let l = log_of [ ev 1 "a"; ev 1 "c"; ev 1 "d" ] in
  Alcotest.(check (list string))
    "translation" [ "b"; "d" ]
    (List.map (fun (e : Event.t) -> e.tag) (Log.chronological (Sim_rel.apply r l)))

let test_sim_rel_default_drop () =
  let r = Sim_rel.of_table "r" ~default:`Drop [ "a", `To "b" ] in
  let l = log_of [ ev 1 "a"; ev 1 "z" ] in
  check_int "only a kept" 1 (Log.length (Sim_rel.apply r l))

let test_sim_rel_compose_id () =
  let r = Sim_rel.of_table "r" [ "a", `To "b" ] in
  check_bool "id right unit" true (Sim_rel.compose r Sim_rel.id == r);
  check_bool "id left unit" true (Sim_rel.compose Sim_rel.id r == r)

let test_sim_rel_compose_order () =
  let r1 = Sim_rel.of_table "r1" [ "a", `To "b" ] in
  let r2 = Sim_rel.of_table "r2" [ "b", `To "c" ] in
  let l = log_of [ ev 1 "a" ] in
  let out = Sim_rel.apply (Sim_rel.compose r1 r2) l in
  check_string "a->b->c" "c" (Option.get (Log.latest out)).Event.tag

let envs_for _i = [ Env_context.empty ]

let test_simulation_bump_ok () =
  match
    Simulation.check_progs r_bump ~tid:1 ~impl_layer:(under_layer ())
      ~impl:(Prog.Module.link (bump_module ()) (Prog.call bump2_tag [ vi 0 ]))
      ~spec_layer:(over_layer ()) ~spec:(Prog.call bump2_tag [ vi 0 ])
      ~envs:(envs_for 1)
  with
  | Ok r -> check_int "one env" 1 r.Simulation.envs_checked
  | Error f -> Alcotest.failf "unexpected: %a" Simulation.pp_failure f

let test_simulation_detects_wrong_impl () =
  (* a buggy bump2 that ticks only once: the relation leaves a lone tick,
     which the spec cannot produce *)
  let bad = Prog.Module.of_bodies [ bump2_tag, (fun args -> Prog.call "tick" args) ] in
  match
    Simulation.check_progs r_bump ~tid:1 ~impl_layer:(under_layer ())
      ~impl:(Prog.Module.link bad (Prog.call bump2_tag [ vi 0 ]))
      ~spec_layer:(over_layer ()) ~spec:(Prog.call bump2_tag [ vi 0 ])
      ~envs:(envs_for 1)
  with
  | Ok _ -> Alcotest.fail "buggy implementation passed"
  | Error _ -> ()

let test_simulation_detects_wrong_ret () =
  (* correct events but wrong result *)
  let bad =
    Prog.Module.of_bodies
      [ ( bump2_tag,
          fun args ->
            Prog.seq (Prog.call "tick" args)
              (Prog.seq (Prog.call "tick" args) (Prog.ret (vi 999))) ) ]
  in
  match
    Simulation.check_progs r_bump ~tid:1 ~impl_layer:(under_layer ())
      ~impl:(Prog.Module.link bad (Prog.call bump2_tag [ vi 0 ]))
      ~spec_layer:(over_layer ()) ~spec:(Prog.call bump2_tag [ vi 0 ])
      ~envs:(envs_for 1)
  with
  | Ok _ -> Alcotest.fail "wrong return value passed"
  | Error f ->
    check_bool "reason mentions return" true
      (String.length f.Simulation.reason > 0)

let test_drive_runs_to_done () =
  let layer = under_layer () in
  let s = Machine.strategy_of_prog layer 1 (Prog.call "tick" [ vi 0 ]) in
  let d = Simulation.drive 1 s ~env:Env_context.empty ~init_log:Log.empty in
  check_bool "finished" true (d.Simulation.ret <> None);
  check_int "one event" 1 (Log.length d.Simulation.log)

let test_replay_against_env_injection () =
  let layer = over_layer () in
  let spec = Machine.strategy_of_prog layer 1 (Prog.call bump2_tag [ vi 0 ]) in
  let translated =
    log_of [ ev ~args:[ vi 0 ] ~ret:(vi 2) 2 bump2_tag;
             ev ~args:[ vi 0 ] ~ret:(vi 2) 1 bump2_tag ]
  in
  match Simulation.replay_against 1 spec ~init_log:Log.empty translated with
  | Ok (Some v) -> check_int "spec result" 2 (Value.to_int v)
  | Ok None -> Alcotest.fail "no result"
  | Error (msg, _) -> Alcotest.failf "replay failed: %s" msg

(* ---- calculus ---- *)

let fun_cert () =
  Calculus.fun_rule ~underlay:(under_layer ()) ~overlay:(over_layer ())
    ~impl:(bump_module ()) ~rel:r_bump ~focus:[ 1; 2 ]
    ~prim_tests:
      [ bump2_tag,
        [ Calculus.case [ vi 0 ];
          Calculus.case ~pre:[ bump2_tag, [ vi 0 ] ] [ vi 0 ] ] ]
    ~envs:envs_for ()

let test_fun_rule () =
  match fun_cert () with
  | Ok c ->
    check_int "4 obligations" 4 (List.length c.Calculus.evidence);
    check_bool "rule" true (c.Calculus.rule = Calculus.Fun)
  | Error e -> Alcotest.failf "fun rule failed: %a" Calculus.pp_error e

let test_empty_rule () =
  let c = Calculus.empty_rule (under_layer ()) [ 1 ] in
  check_bool "same layers" true
    (String.equal c.Calculus.judgment.Calculus.underlay.Layer.name
       c.Calculus.judgment.Calculus.overlay.Layer.name)

let test_vcomp_name_mismatch () =
  let c = Calculus.empty_rule (under_layer ()) [ 1 ] in
  let c' = Calculus.empty_rule (over_layer ()) [ 1 ] in
  match Calculus.vcomp c c' with
  | Error e -> check_bool "vcomp" true (e.Calculus.rule = Calculus.Vcomp)
  | Ok _ -> Alcotest.fail "expected layer mismatch"

let test_vcomp_ok () =
  let c = Calculus.empty_rule (under_layer ()) [ 1; 2 ] in
  match fun_cert () with
  | Error e -> Alcotest.failf "premise failed: %a" Calculus.pp_error e
  | Ok c2 -> (
    match Calculus.vcomp c c2 with
    | Ok c3 ->
      check_bool "overlay is Lbump" true
        (String.equal c3.Calculus.judgment.Calculus.overlay.Layer.name "Lbump")
    | Error e -> Alcotest.failf "vcomp failed: %a" Calculus.pp_error e)

let test_hcomp_focus_mismatch () =
  let c1 = Calculus.empty_rule (under_layer ()) [ 1 ] in
  let c2 = Calculus.empty_rule (under_layer ()) [ 2 ] in
  match Calculus.hcomp c1 c2 with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "expected focus mismatch"

let test_pcomp () =
  let mk focus =
    Calculus.fun_rule ~underlay:(under_layer ()) ~overlay:(over_layer ())
      ~impl:(bump_module ()) ~rel:r_bump ~focus
      ~prim_tests:[ bump2_tag, [ Calculus.case [ vi 0 ] ] ]
      ~envs:envs_for ()
  in
  match mk [ 1 ], mk [ 2 ] with
  | Ok c1, Ok c2 -> (
    match Calculus.pcomp c1 c2 ~compat_logs:[ Log.empty ] with
    | Ok c ->
      Alcotest.(check (list int)) "union focus" [ 1; 2 ] (Calculus.focus c)
    | Error e -> Alcotest.failf "pcomp failed: %a" Calculus.pp_error e)
  | _ -> Alcotest.fail "premises failed"

let test_pcomp_overlap_rejected () =
  let c1 = Calculus.empty_rule (under_layer ()) [ 1; 2 ] in
  let c2 = Calculus.empty_rule (under_layer ()) [ 2; 3 ] in
  match Calculus.pcomp c1 c2 ~compat_logs:[] with
  | Error e -> check_bool "pcomp" true (e.Calculus.rule = Calculus.Pcomp)
  | Ok _ -> Alcotest.fail "overlapping focus accepted"

let test_compat_tested_implication () =
  let layer =
    Layer.with_conditions
      ~rely:(Rely_guarantee.make "even" (fun i l ->
          Log.count (fun (e : Event.t) -> e.src = i) l mod 2 = 0))
      ~guar:Rely_guarantee.never (under_layer ())
  in
  (* guarantee [never] vacuously implies anything *)
  match Calculus.compat layer ~a:[ 1 ] ~b:[ 2 ] ~logs:[ log_of [ ev 1 "tick" ] ] with
  | Ok _ -> ()
  | Error msg -> Alcotest.failf "vacuous compat failed: %s" msg

let test_compat_failure () =
  let layer =
    Layer.with_conditions
      ~rely:Rely_guarantee.never ~guar:Rely_guarantee.always (under_layer ())
  in
  match Calculus.compat layer ~a:[ 1 ] ~b:[ 2 ] ~logs:[ Log.empty ] with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "always => never should fail"

let test_count_checks () =
  match fun_cert () with
  | Ok c -> check_int "count" 4 (Calculus.count_checks c)
  | Error _ -> Alcotest.fail "premise failed"

(* ---- refinement ---- *)

let test_refinement_ok () =
  match fun_cert () with
  | Error e -> Alcotest.failf "premise failed: %a" Calculus.pp_error e
  | Ok cert -> (
    let client _ =
      Prog.seq (Prog.call bump2_tag [ vi 0 ]) (Prog.call bump2_tag [ vi 0 ])
    in
    match
      Refinement.check_cert cert ~client ~scheds:(Sched.default_suite ~seeds:4)
    with
    | Ok r -> check_int "scheds" 5 r.Refinement.scheds_checked
    | Error f -> Alcotest.failf "refinement failed: %a" Refinement.pp_failure f)

let test_refinement_catches_bad_module () =
  let bad = Prog.Module.of_bodies [ bump2_tag, (fun args -> Prog.call "tick" args) ] in
  match
    Refinement.check ~underlay:(under_layer ()) ~impl:bad
      ~overlay:(over_layer ()) ~rel:r_bump
      ~client:(fun _ -> Prog.call bump2_tag [ vi 0 ])
      ~tids:[ 1; 2 ] ~scheds:[ Sched.round_robin ] ()
  with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "bad module passed refinement"

let test_replay_multi_rejects_foreign_events () =
  let layer = over_layer () in
  let l = log_of [ ev ~args:[ vi 0 ] ~ret:(vi 2) 7 bump2_tag ] in
  match Refinement.replay_multi layer [ 1, Prog.ret_unit ] l with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "unknown thread accepted"

let suite =
  [
    tc "sim_rel table" test_sim_rel_table;
    tc "sim_rel default drop" test_sim_rel_default_drop;
    tc "sim_rel compose id" test_sim_rel_compose_id;
    tc "sim_rel compose order" test_sim_rel_compose_order;
    tc "simulation bump ok" test_simulation_bump_ok;
    tc "simulation detects wrong impl" test_simulation_detects_wrong_impl;
    tc "simulation detects wrong ret" test_simulation_detects_wrong_ret;
    tc "drive runs to done" test_drive_runs_to_done;
    tc "replay_against env injection" test_replay_against_env_injection;
    tc "fun rule" test_fun_rule;
    tc "empty rule" test_empty_rule;
    tc "vcomp name mismatch" test_vcomp_name_mismatch;
    tc "vcomp ok" test_vcomp_ok;
    tc "hcomp focus mismatch" test_hcomp_focus_mismatch;
    tc "pcomp" test_pcomp;
    tc "pcomp overlap rejected" test_pcomp_overlap_rejected;
    tc "compat tested implication" test_compat_tested_implication;
    tc "compat failure" test_compat_failure;
    tc "count checks" test_count_checks;
    tc "refinement ok" test_refinement_ok;
    tc "refinement catches bad module" test_refinement_catches_bad_module;
    tc "replay_multi rejects foreign events" test_replay_multi_rejects_foreign_events;
  ]
