(* Tests for ClightX semantics, the CompCertX compiler, translation
   validation and the algebraic memory model (S12–S14). *)
open Ccal_core
module C = Ccal_clight.Csyntax
module Csem = Ccal_clight.Csem
module Cx = Ccal_compcertx.Compile
module V = Ccal_compcertx.Validate
module M = Ccal_compcertx.Mem_algebra
open Util

let hw () = Ccal_machine.Mx86.layer ()

(* ---- ClightX semantics ---- *)

let fn name params locals body = { C.name; params; locals; body }

let test_c_return_expr () =
  let f = fn "f" [ "x" ] [] (C.return C.(v "x" + i 1)) in
  check_int "x+1" 8 (Value.to_int (expect_done (hw ()) (Csem.prog_of_fn f [ vi 7 ])))

let test_c_locals_default_zero () =
  let f = fn "f" [] [ "y" ] (C.return (C.v "y")) in
  check_int "zero" 0 (Value.to_int (expect_done (hw ()) (Csem.prog_of_fn f [])))

let test_c_if () =
  let f =
    fn "f" [ "x" ] []
      (C.if_ C.(v "x" > i 0) (C.return (C.i 1)) (C.return (C.i (-1))))
  in
  check_int "pos" 1 (Value.to_int (expect_done (hw ()) (Csem.prog_of_fn f [ vi 3 ])));
  check_int "neg" (-1) (Value.to_int (expect_done (hw ()) (Csem.prog_of_fn f [ vi 0 ])))

let test_c_while () =
  (* factorial *)
  let f =
    fn "fact" [ "n" ] [ "acc" ]
      (C.seq
         [
           C.set "acc" (C.i 1);
           C.while_ C.(v "n" > i 0)
             (C.seq [ C.set "acc" C.(v "acc" * v "n"); C.set "n" C.(v "n" - i 1) ]);
           C.return (C.v "acc");
         ])
  in
  check_int "5!" 120 (Value.to_int (expect_done (hw ()) (Csem.prog_of_fn f [ vi 5 ])))

let test_c_prim_call () =
  let f =
    fn "f" [] [ "a" ]
      (C.seq
         [
           C.call_ "astore" [ C.i 3; C.i 9 ];
           C.calla "a" "aload" [ C.i 3 ];
           C.return (C.v "a");
         ])
  in
  check_int "through cell" 9 (Value.to_int (expect_done (hw ()) (Csem.prog_of_fn f [])))

let test_c_unbound_var_faults () =
  let f = fn "f" [] [] (C.return (C.v "nope")) in
  ignore (expect_stuck (hw ()) (Csem.prog_of_fn f []))

let test_c_div_zero_faults () =
  let f = fn "f" [] [] (C.return (C.Binop (C.Div, C.i 1, C.i 0))) in
  ignore (expect_stuck (hw ()) (Csem.prog_of_fn f []))

let test_c_fuel () =
  let f = fn "f" [] [] (C.while_ (C.i 1) C.Sskip) in
  ignore (expect_stuck (hw ()) (Csem.prog_of_fn ~fuel:500 f []))

let test_c_wrong_arity_faults () =
  let f = fn "f" [ "x" ] [] (C.return (C.v "x")) in
  ignore (expect_stuck (hw ()) (Csem.prog_of_fn f []))

let test_c_param_local_clash_rejected () =
  let f = fn "f" [ "x" ] [ "x" ] (C.return (C.v "x")) in
  check_bool "raises" true
    (try ignore (Csem.prog_of_fn f [ vi 1 ]); false
     with Csem.Semantics_error _ -> true)

let test_c_void_returns_unit () =
  let f = fn "f" [] [] C.return_unit in
  check_bool "unit" true
    (Value.equal Value.unit (expect_done (hw ()) (Csem.prog_of_fn f [])))

let test_c_unops () =
  let f = fn "f" [ "x" ] [] (C.return (C.Unop (C.Neg, C.v "x"))) in
  check_int "neg" (-5) (Value.to_int (expect_done (hw ()) (Csem.prog_of_fn f [ vi 5 ])));
  let g = fn "g" [ "x" ] [] (C.return (C.Unop (C.Not, C.v "x"))) in
  check_int "not 0" 1 (Value.to_int (expect_done (hw ()) (Csem.prog_of_fn g [ vi 0 ])))

(* ---- compiler ---- *)

let sample_fns =
  [
    fn "id" [ "x" ] [] (C.return (C.v "x"));
    fn "arith" [ "x"; "y" ] [ "t" ]
      (C.seq
         [
           C.set "t" C.(((v "x" + v "y") * i 3) - i 1);
           C.return C.(v "t" + (v "x" * v "y"));
         ]);
    fn "cond" [ "x" ] []
      (C.if_ C.(v "x" >= i 10) (C.return C.(v "x" - i 10)) (C.return (C.v "x")));
    fn "loop" [ "n" ] [ "s"; "k" ]
      (C.seq
         [
           C.set "s" (C.i 0);
           C.set "k" (C.i 1);
           C.while_ C.(v "k" <= v "n")
             (C.seq [ C.set "s" C.(v "s" + v "k"); C.set "k" C.(v "k" + i 1) ]);
           C.return (C.v "s");
         ]);
    fn "cells" [ "c" ] [ "a" ]
      (C.seq
         [
           C.call_ "astore" [ C.v "c"; C.i 5 ];
           C.calla "a" "faa" [ C.v "c"; C.i 2 ];
           C.calla "a" "aload" [ C.v "c" ];
           C.return (C.v "a");
         ]);
    fn "void_fn" [ "c" ] [] (C.seq [ C.call_ "astore" [ C.v "c"; C.i 1 ]; C.return_unit ]);
  ]

let test_compile_matches_source () =
  List.iter
    (fun f ->
      let asm = Cx.compile_fn f in
      List.iter
        (fun arg ->
          let c = expect_done (hw ()) (Csem.prog_of_fn f (List.map vi arg)) in
          let a =
            expect_done (hw ()) (Ccal_machine.Asm_sem.prog_of_fn asm (List.map vi arg))
          in
          Alcotest.check value_testable
            (Printf.sprintf "%s(%s)" f.C.name
               (String.concat "," (List.map string_of_int arg)))
            c a)
        (match List.length f.C.params with
        | 0 -> [ [] ]
        | 1 -> [ [ 0 ]; [ 5 ]; [ 13 ] ]
        | _ -> [ [ 0; 0 ]; [ 2; 3 ]; [ 7; 11 ] ]))
    sample_fns

let test_validate_module () =
  match
    V.validate_module ~layer:(hw ()) ~tids:[ 1; 2 ]
      ~arg_cases:
        [
          "id", [ [ vi 4 ] ];
          "arith", [ [ vi 1; vi 2 ]; [ vi 0; vi 0 ] ];
          "cond", [ [ vi 3 ]; [ vi 30 ] ];
          "loop", [ [ vi 6 ] ];
          "cells", [ [ vi 50 ]; [ vi 51 ] ];
          "void_fn", [ [ vi 52 ] ];
        ]
      ~envs:(fun _ -> [ Env_context.empty ])
      sample_fns
  with
  | Ok r ->
    check_int "fns" 6 r.V.fns_validated;
    check_bool "cases" true (r.V.cases_run > 0)
  | Error f -> Alcotest.failf "validation failed: %a" V.pp_failure f

let test_validate_with_env_events () =
  (* environment events interleave identically on both sides *)
  let f =
    fn "reader" [ "c" ] [ "a" ]
      (C.seq [ C.calla "a" "aload" [ C.v "c" ]; C.return (C.v "a") ])
  in
  let envs _ =
    [ Env_context.of_script "w" [ [ ev ~args:[ vi 60; vi 9 ] 2 "astore" ] ] ]
  in
  match
    V.validate_fn ~layer:(hw ()) ~tids:[ 1 ] ~arg_cases:[ [ vi 60 ] ] ~envs f
  with
  | Ok n -> check_int "cases" 1 n
  | Error fl -> Alcotest.failf "failed: %a" V.pp_failure fl

let test_validate_catches_miscompilation () =
  (* a hand-broken "compiler": compare the source against the compilation
     of a different function *)
  let good = fn "g" [ "x" ] [] (C.return C.(v "x" + i 1)) in
  let evil_asm = Cx.compile_fn (fn "g" [ "x" ] [] (C.return C.(v "x" + i 2))) in
  let c = expect_done (hw ()) (Csem.prog_of_fn good [ vi 1 ]) in
  let a = expect_done (hw ()) (Ccal_machine.Asm_sem.prog_of_fn evil_asm [ vi 1 ]) in
  check_bool "differ" false (Value.equal c a)

let test_compile_slot_assignment () =
  let f = fn "f" [ "a"; "b" ] [ "c" ] (C.return (C.i 0)) in
  check_bool "slots" true
    (Cx.slot_of_var f "a" = Some 0 && Cx.slot_of_var f "b" = Some 1
    && Cx.slot_of_var f "c" = Some 2 && Cx.slot_of_var f "z" = None)

let test_compile_duplicate_var_rejected () =
  let f = fn "f" [ "a"; "a" ] [] (C.return (C.i 0)) in
  check_bool "raises" true
    (try ignore (Cx.compile_fn f); false with Cx.Unsupported _ -> true)

(* random expression compilation agrees with source *)
let expr_gen =
  let open QCheck.Gen in
  let rec gen n =
    if n = 0 then
      oneof [ map (fun k -> C.Const k) (int_range (-20) 20);
              oneofl [ C.Var "x"; C.Var "y" ] ]
    else
      frequency
        [
          1, map (fun k -> C.Const k) (int_range (-20) 20);
          1, oneofl [ C.Var "x"; C.Var "y" ];
          3,
          ( let* op =
              oneofl [ C.Add; C.Sub; C.Mul; C.Eq; C.Ne; C.Lt; C.Le; C.Gt; C.Ge;
                       C.And; C.Or ]
            in
            let* a = gen (n / 2) in
            let* b = gen (n / 2) in
            return (C.Binop (op, a, b)) );
          1, map (fun e -> C.Unop (C.Neg, e)) (gen (n - 1));
        ]
  in
  gen 5

let prop_compile_expr_correct =
  qtc ~count:300 "compiled expressions agree with source"
    (QCheck.make expr_gen) (fun e ->
      let f = fn "f" [ "x"; "y" ] [] (C.return e) in
      let asm = Cx.compile_fn f in
      List.for_all
        (fun (x, y) ->
          let args = [ vi x; vi y ] in
          let c = run_solo (hw ()) (Csem.prog_of_fn f args) in
          let a = run_solo (hw ()) (Ccal_machine.Asm_sem.prog_of_fn asm args) in
          match c.Machine.outcome, a.Machine.outcome with
          | Machine.Done vc, Machine.Done va -> Value.equal vc va
          | Machine.Stuck_run _, Machine.Stuck_run _ -> true
          | _ -> false)
        [ 0, 0; 1, 2; -3, 7 ])

(* ---- algebraic memory model (Fig. 12) ---- *)

let mem_with_block () =
  let m, b = M.alloc M.empty 0 4 in
  let m = Option.get (M.st m { M.block = b; off = 1 } (vi 5)) in
  m, b

let test_mem_nb_alloc () =
  let m, b = M.alloc M.empty 0 4 in
  check_int "one block" 1 (M.nb m);
  check_int "index" 0 b;
  check_int "liftnb" 4 (M.nb (M.liftnb m 3))

let test_mem_ld_st () =
  let m, b = mem_with_block () in
  (match M.ld m { M.block = b; off = 1 } with
  | Some v -> check_int "stored" 5 (Value.to_int v)
  | None -> Alcotest.fail "load failed");
  check_bool "unwritten reads 0" true
    (match M.ld m { M.block = b; off = 0 } with
    | Some v -> Value.to_int v = 0
    | None -> false);
  check_bool "out of bounds" true (M.ld m { M.block = b; off = 9 } = None);
  check_bool "empty block no perm" true
    (M.ld (M.liftnb m 1) { M.block = 1; off = 0 } = None)

let test_mem_compose_disjoint () =
  let m1, _ = mem_with_block () in
  let m2 = M.liftnb M.empty 1 in
  (* m1 has a real block at 0; m2 only an empty placeholder there *)
  match M.compose m1 m2 with
  | Some m ->
    check_bool "related" true (M.related m1 m2 m);
    check_bool "comm (axiom Comm)" true (M.related m2 m1 m)
  | None -> Alcotest.fail "compose failed"

let test_mem_compose_conflict () =
  let m1, _ = mem_with_block () in
  let m2, _ = mem_with_block () in
  check_bool "both real at 0" true (M.compose m1 m2 = None)

let test_mem_compose_many () =
  let m1, _ = M.alloc M.empty 0 2 in
  let m2 = M.liftnb M.empty 1 in
  let m2, _ = M.alloc m2 0 2 in
  (* m1 = [real]; m2 = [empty; real] *)
  match M.compose_many [ m1; m2 ] with
  | Some m -> check_int "nb (axiom Nb)" 2 (M.nb m)
  | None -> Alcotest.fail "n-way compose failed"

(* Fig. 12 axioms as properties over randomly built compatible pairs. *)
let compatible_pair_gen =
  let open QCheck.Gen in
  let* n = int_range 1 6 in
  let* owners = list_repeat n bool in
  let build mine =
    List.fold_left
      (fun m owned ->
        if owned = mine then fst (M.alloc m 0 4) else M.liftnb m 1)
      M.empty owners
  in
  return (build true, build false, owners)

let compatible_pair = QCheck.make compatible_pair_gen

let prop_axiom_nb =
  qtc "axiom Nb: nb(m) = max(nb m1, nb m2)" compatible_pair (fun (m1, m2, _) ->
      match M.compose m1 m2 with
      | Some m -> M.nb m = max (M.nb m1) (M.nb m2)
      | None -> false)

let prop_axiom_comm =
  qtc "axiom Comm" compatible_pair (fun (m1, m2, _) ->
      match M.compose m1 m2 with
      | Some m -> M.related m2 m1 m
      | None -> false)

let prop_axiom_ld =
  qtc "axiom Ld: loads preserved" compatible_pair (fun (m1, m2, owners) ->
      match M.compose m1 m2 with
      | None -> false
      | Some m ->
        List.for_all
          (fun b ->
            let l = { M.block = b; off = 1 } in
            match M.ld m2 l with
            | Some v -> M.ld m l = Some v
            | None -> true)
          (List.mapi (fun i _ -> i) owners))

let prop_axiom_st =
  qtc "axiom St: stores preserved" compatible_pair (fun (m1, m2, owners) ->
      match M.compose m1 m2 with
      | None -> false
      | Some m ->
        List.for_all
          (fun b ->
            let l = { M.block = b; off = 2 } in
            match M.st m2 l (vi 77) with
            | Some m2' -> (
              match M.st m l (vi 77) with
              | Some m' -> M.related m1 m2' m'
              | None -> false)
            | None -> true)
          (List.mapi (fun i _ -> i) owners))

let prop_axiom_alloc =
  qtc "axiom Alloc" compatible_pair (fun (m1, m2, _) ->
      QCheck.assume (M.nb m1 <= M.nb m2);
      match M.compose m1 m2 with
      | None -> false
      | Some m ->
        let m2', _ = M.alloc m2 0 4 in
        let m', _ = M.alloc m 0 4 in
        M.related m1 m2' m')

let prop_axiom_lift_r =
  qtc "axiom Lift-R" compatible_pair (fun (m1, m2, _) ->
      QCheck.assume (M.nb m1 <= M.nb m2);
      match M.compose m1 m2 with
      | None -> false
      | Some m -> M.related m1 (M.liftnb m2 2) (M.liftnb m 2))

let prop_axiom_lift_l =
  qtc "axiom Lift-L" compatible_pair (fun (m1, m2, _) ->
      QCheck.assume (M.nb m1 <= M.nb m2);
      match M.compose m1 m2 with
      | None -> false
      | Some m ->
        let n = 3 in
        let shortfall = n - (M.nb m - M.nb m1) in
        let mlift = if shortfall > 0 then M.liftnb m shortfall else m in
        M.related (M.liftnb m1 n) m2 mlift)

let suite =
  [
    tc "c return expr" test_c_return_expr;
    tc "c locals default zero" test_c_locals_default_zero;
    tc "c if" test_c_if;
    tc "c while (factorial)" test_c_while;
    tc "c prim call" test_c_prim_call;
    tc "c unbound var faults" test_c_unbound_var_faults;
    tc "c div zero faults" test_c_div_zero_faults;
    tc "c fuel" test_c_fuel;
    tc "c wrong arity faults" test_c_wrong_arity_faults;
    tc "c param/local clash rejected" test_c_param_local_clash_rejected;
    tc "c void returns unit" test_c_void_returns_unit;
    tc "c unops" test_c_unops;
    tc "compile matches source" test_compile_matches_source;
    tc "validate module" test_validate_module;
    tc "validate with env events" test_validate_with_env_events;
    tc "validation would catch miscompilation" test_validate_catches_miscompilation;
    tc "compile slot assignment" test_compile_slot_assignment;
    tc "compile duplicate var rejected" test_compile_duplicate_var_rejected;
    prop_compile_expr_correct;
    tc "mem nb/alloc/liftnb" test_mem_nb_alloc;
    tc "mem ld/st" test_mem_ld_st;
    tc "mem compose disjoint" test_mem_compose_disjoint;
    tc "mem compose conflict" test_mem_compose_conflict;
    tc "mem compose many" test_mem_compose_many;
    prop_axiom_nb;
    prop_axiom_comm;
    prop_axiom_ld;
    prop_axiom_st;
    prop_axiom_alloc;
    prop_axiom_lift_r;
    prop_axiom_lift_l;
  ]
