(* Tests for the multithreaded machinery: thread scheduler (Sec. 5.1–5.3),
   queuing lock (Fig. 11), condition variables and the IPC channel
   (S18–S21). *)
open Ccal_core
open Ccal_objects
open Util
module T = Thread_sched

let mt placement = T.mt_layer placement (Lock_intf.layer "Llock")

let yield_ = Prog.call T.yield_tag []
let texit = Prog.call T.exit_tag []

(* ---- Rsched replay ---- *)

let test_init_state () =
  let st = T.init_state [ 1, 0; 2, 0; 3, 1 ] in
  (match List.assoc 0 st.T.cpus with
  | { T.running = Some 1; rdq = [ 2 ]; pendq = [] } -> ()
  | _ -> Alcotest.fail "cpu0 wrong");
  match List.assoc 1 st.T.cpus with
  | { T.running = Some 3; rdq = []; pendq = [] } -> ()
  | _ -> Alcotest.fail "cpu1 wrong"

let test_yield_rotates () =
  let placement = [ 1, 0; 2, 0 ] in
  let l = log_of [ ev 1 T.yield_tag ] in
  check_bool "2 now running" true (T.is_running placement 2 l);
  check_bool "1 descheduled" false (T.is_running placement 1 l);
  let l2 = Log.append (ev 2 T.yield_tag) l in
  check_bool "1 again" true (T.is_running placement 1 l2)

let test_sleep_wakeup_cycle () =
  let placement = [ 1, 0; 2, 0 ] in
  let l = log_of [ ev ~args:[ vi 9 ] 1 T.sleep_tag ] in
  check_bool "2 running after 1 sleeps" true (T.is_running placement 2 l);
  Alcotest.(check (list int)) "sleeper" [ 1 ] (T.sleepers placement 9 l);
  let l2 = Log.append (ev ~args:[ vi 9 ] ~ret:(vi 1) 2 T.wakeup_tag) l in
  Alcotest.(check (list int)) "woken" [] (T.sleepers placement 9 l2);
  (* same cpu: 1 went to the ready queue, 2 still runs *)
  check_bool "2 still running" true (T.is_running placement 2 l2);
  let l3 = Log.append (ev 2 T.yield_tag) l2 in
  check_bool "1 resumes" true (T.is_running placement 1 l3)

let test_wakeup_idle_cpu () =
  let placement = [ 1, 0; 2, 1 ] in
  let l = log_of [ ev ~args:[ vi 9 ] 1 T.sleep_tag ] in
  (* cpu0 idle now *)
  let l2 = Log.append (ev ~args:[ vi 9 ] ~ret:(vi 1) 2 T.wakeup_tag) l in
  check_bool "woken directly to running" true (T.is_running placement 1 l2)

let test_texit_removes () =
  let placement = [ 1, 0; 2, 0 ] in
  let l = log_of [ ev 1 T.exit_tag ] in
  check_bool "2 running" true (T.is_running placement 2 l);
  let l2 = Log.append (ev 2 T.exit_tag) l in
  check_bool "nobody" false (T.is_running placement 1 l2 || T.is_running placement 2 l2)

let test_sched_event_by_descheduled_rejected () =
  let placement = [ 1, 0; 2, 0 ] in
  let l = log_of [ ev 2 T.yield_tag ] in
  check_bool "replay stuck" false
    (Replay.well_formed (T.replay_sched placement) l)

let test_unplaced_thread_rejected () =
  let l = log_of [ ev 7 T.yield_tag ] in
  check_bool "stuck" false (Replay.well_formed (T.replay_sched [ 1, 0 ]) l)

(* ---- turn discipline ---- *)

let test_turn_blocks_descheduled () =
  let placement = [ 1, 0; 2, 0 ] in
  let layer = mt placement in
  (* thread 2 cannot move until thread 1 yields *)
  let o =
    Game.run
      (Game.config layer
         [ 1, Prog.seq yield_ texit;
           2, Prog.seq (Prog.call "acq" [ vi 0 ])
                (Prog.seq (Prog.call "rel" [ vi 0; vi 2 ]) texit) ]
         (Sched.of_trace [ 2; 2; 1; 2; 2; 2; 1 ]))
  in
  check_bool "completes" true (Game.successful o);
  (* 2's acq necessarily came after 1's yield *)
  let tags = List.map (fun (e : Event.t) -> e.Event.src, e.Event.tag)
      (Log.chronological o.Game.log) in
  check_bool "yield first" true
    (match tags with (1, "yield") :: _ -> true | _ -> false)

let test_turn_consistent () =
  let placement = [ 1, 0; 2, 0 ] in
  let layer = mt placement in
  let prog i =
    Prog.seq_all
      [ Prog.call "acq" [ vi 0 ]; Prog.call "rel" [ vi 0; vi i ]; yield_; texit ]
  in
  let o =
    Game.run (Game.config layer [ 1, prog 1; 2, prog 2 ] (Sched.random ~seed:3))
  in
  check_bool "done" true (Game.successful o);
  check_bool "turn consistent" true (T.turn_consistent placement o.Game.log)

let test_multithreaded_linking () =
  let placement = [ 1, 0; 2, 0; 3, 1 ] in
  let layer = mt placement in
  let prog i =
    Prog.seq_all
      [ Prog.call "acq" [ vi 0 ]; Prog.call "rel" [ vi 0; vi i ]; yield_; texit ]
  in
  match
    T.check_multithreaded_linking ~placement ~layer
      ~threads:[ 1, prog 1; 2, prog 2; 3, prog 3 ]
      ~scheds:(Sched.default_suite ~seeds:5) ()
  with
  | Ok n -> check_int "schedules" 6 n
  | Error msg -> Alcotest.fail msg

let test_sleep_requires_lock () =
  let placement = [ 1, 0 ] in
  let layer = mt placement in
  ignore (expect_stuck layer (Prog.call T.sleep_tag [ vi 9; vi 0; vi 1 ]))

let test_sleep_releases_lock_atomically () =
  let placement = [ 1, 0; 2, 0 ] in
  let layer = mt placement in
  let prog1 =
    Prog.seq
      (Prog.call "acq" [ vi 0 ])
      (Prog.call T.sleep_tag [ vi 9; vi 0; vi 7 ])
  in
  let prog2 =
    Prog.seq_all
      [ Prog.call "acq" [ vi 0 ]; Prog.call "rel" [ vi 0; vi 2 ]; texit ]
  in
  let o =
    Game.run (Game.config layer [ 1, prog1; 2, prog2 ] Sched.round_robin)
  in
  (* 1 sleeps forever but released the lock, so 2 finishes *)
  check_bool "thread 2 finished" true (List.mem_assoc 2 o.Game.results);
  (* the sleep emitted rel and sleep adjacently *)
  let tags = List.filter_map
      (fun (e : Event.t) -> if e.src = 1 then Some e.Event.tag else None)
      (Log.chronological o.Game.log) in
  check_bool "rel then sleep" true
    (match tags with [ "acq"; "rel"; "sleep" ] -> true | _ -> false)

let test_get_tid () =
  let layer = mt [ 4, 0 ] in
  check_int "tid" 4 (Value.to_int (expect_done ~tid:4 layer (Prog.call "get_tid" [])))

(* ---- queuing lock ---- *)

let test_qlock_certify () =
  match Qlock.certify () with
  | Ok _ -> ()
  | Error e -> Alcotest.failf "%a" Calculus.pp_error e

let test_qlock_certify_asm () =
  match Qlock.certify ~focus:[ 1 ] ~use_asm:true () with
  | Ok _ -> ()
  | Error e -> Alcotest.failf "%a" Calculus.pp_error e

let qlock_client l i =
  Prog.seq_all
    [ Prog.call "acq_q" [ vi l ]; Prog.call "rel_q" [ vi l ]; yield_; texit;
      Prog.ret (vi i) ]

let run_qlock_game placement sched =
  let layer = Qlock.underlay ~placement () in
  let m = Qlock.c_module () in
  Game.run
    (Game.config ~max_steps:400_000 layer
       (List.map (fun (t, _) -> t, Prog.Module.link m (qlock_client 3 t)) placement)
       sched)

let test_qlock_game_own_cpus () =
  List.iter
    (fun sched ->
      let o = run_qlock_game [ 1, 1; 2, 2; 3, 3 ] sched in
      check_bool "completes" true (Game.successful o);
      let t = Sim_rel.apply Qlock.r_qlock o.Game.log in
      check_bool "qlock history wellformed" true
        (Replay.well_formed (Qlock.replay_qlock 3) t))
    (Sched.default_suite ~seeds:8)

let test_qlock_game_shared_cpu () =
  List.iter
    (fun sched ->
      let o = run_qlock_game [ 1, 0; 2, 0; 3, 1 ] sched in
      check_bool "completes" true (Game.successful o))
    (Sched.default_suite ~seeds:8)

let test_qlock_sleeping_not_spinning () =
  (* under contention the waiter sleeps: the log contains sleep events and
     no unbounded spinning *)
  let o = run_qlock_game [ 1, 1; 2, 2 ] (Sched.of_trace [ 1; 2; 2; 2; 2; 2 ]) in
  check_bool "completes" true (Game.successful o);
  check_bool "log stays small" true (Log.length o.Game.log < 40)

let prop_qlock_random =
  qtc ~count:25 "qlock safe under random schedules" QCheck.(int_range 1 2_000)
    (fun seed ->
      let o = run_qlock_game [ 1, 0; 2, 0; 3, 1 ] (Sched.random ~seed) in
      Game.successful o
      &&
      let t = Sim_rel.apply Qlock.r_qlock o.Game.log in
      Replay.well_formed (Qlock.replay_qlock 3) t)

let test_qlock_refinement_shared_cpu () =
  match Qlock.certify ~placement:[ 1, 0; 2, 0; 8, 8; 9, 9 ] ~focus:[ 1; 2 ] () with
  | Error e -> Alcotest.failf "%a" Calculus.pp_error e
  | Ok cert -> (
    let client i =
      Prog.seq_all
        [ Prog.call "acq_q" [ vi 3 ]; Prog.call "rel_q" [ vi 3 ];
          yield_; texit; Prog.ret (vi i) ]
    in
    match
      Refinement.check_cert cert ~client ~scheds:(Sched.default_suite ~seeds:5)
    with
    | Ok _ -> ()
    | Error f -> Alcotest.failf "%a" Refinement.pp_failure f)

(* ---- condition variables ---- *)

let test_cv_signal_no_sleeper () =
  let layer = mt [ 1, 0 ] in
  let m = Condvar.c_module () in
  let v = expect_done layer (Prog.Module.link m (Prog.call "cv_signal" [ vi 9 ])) in
  check_int "nobody woken" 0 (Value.to_int v)

let test_cv_broadcast_counts () =
  let placement = [ 1, 0; 2, 2; 3, 3 ] in
  let layer = mt placement in
  let m = Condvar.c_module () in
  let sleeper i =
    Prog.seq
      (Prog.call "acq" [ vi 0 ])
      (Prog.seq
         (Prog.Module.link m (Prog.call "cv_wait" [ vi 9; vi 0; vi 0 ]))
         (Prog.ret (vi i)))
  in
  let waker =
    Prog.seq yield_
      (Prog.bind (Prog.Module.link m (Prog.call "cv_broadcast" [ vi 9 ]))
         (fun n -> Prog.seq texit (Prog.ret n)))
  in
  let o =
    Game.run
      (Game.config ~max_steps:100_000 layer
         [ 2, sleeper 2; 3, sleeper 3; 1, waker ]
         (Sched.of_trace [ 2; 2; 2; 3; 3; 3; 1; 1; 1; 1; 2; 3 ]))
  in
  match List.assoc_opt 1 o.Game.results with
  | Some n -> check_int "two woken" 2 (Value.to_int n)
  | None -> Alcotest.failf "waker unfinished: %a" Game.pp_status o.Game.status

(* ---- IPC ---- *)

let test_ipc_certify () =
  match Ipc.certify () with
  | Ok _ -> ()
  | Error e -> Alcotest.failf "%a" Calculus.pp_error e

let test_ipc_overlay_blocks () =
  let layer = Ipc.overlay () in
  let o =
    Game.run
      (Game.config layer [ 1, Prog.call "recv" [ vi 0 ] ] Sched.round_robin)
  in
  match o.Game.status with
  | Game.Deadlock [ 1 ] -> ()
  | s -> Alcotest.failf "expected blocked recv, got %a" Game.pp_status s

let test_ipc_overlay_capacity () =
  let layer = Ipc.overlay () in
  let sends =
    Prog.seq_all
      (List.init (Ipc.capacity + 1) (fun k -> Prog.call "send" [ vi 0; vi k ]))
  in
  let o = Game.run (Game.config layer [ 1, sends ] Sched.round_robin) in
  match o.Game.status with
  | Game.Deadlock [ 1 ] -> ()
  | s -> Alcotest.failf "expected blocked send, got %a" Game.pp_status s

let producer_consumer placement sched n =
  let layer = Ipc.underlay ~placement () in
  let m = Ipc.c_module () in
  let producer =
    Prog.Module.link m
      (Prog.seq_all
         (List.init n (fun k -> Prog.call "send" [ vi 5; vi (100 + k) ])
         @ [ Prog.call T.exit_tag [] ]))
  in
  let consumer =
    Prog.Module.link m
      (let rec go k acc =
         if k = 0 then Prog.seq (Prog.call T.exit_tag []) (Prog.ret (Value.list (List.rev acc)))
         else
           Prog.bind (Prog.call "recv" [ vi 5 ]) (fun v -> go (k - 1) (v :: acc))
       in
       go n [])
  in
  Game.run
    (Game.config ~max_steps:400_000 layer [ 1, producer; 2, consumer ] sched)

let test_ipc_producer_consumer_order () =
  List.iter
    (fun sched ->
      let o = producer_consumer [ 1, 1; 2, 2 ] sched 5 in
      check_bool "completes" true (Game.successful o);
      match List.assoc_opt 2 o.Game.results with
      | Some (Value.Vlist vs) ->
        Alcotest.(check (list int))
          "FIFO delivery" [ 100; 101; 102; 103; 104 ]
          (List.map Value.to_int vs)
      | _ -> Alcotest.fail "consumer result missing")
    (Sched.default_suite ~seeds:6)

let test_ipc_translation_wellformed () =
  let o = producer_consumer [ 1, 1; 2, 2 ] (Sched.random ~seed:77) 4 in
  let t = Sim_rel.apply Ipc.r_ipc o.Game.log in
  check_bool "channel replay ok" true (Replay.well_formed (Ipc.replay_chan 5) t);
  check_int "4 sends" 4 (Log.count (fun e -> String.equal e.Event.tag "send") t);
  check_int "4 recvs" 4 (Log.count (fun e -> String.equal e.Event.tag "recv") t)

let prop_ipc_random =
  qtc ~count:20 "ipc delivers in order under random schedules"
    QCheck.(int_range 1 2_000) (fun seed ->
      let o = producer_consumer [ 1, 1; 2, 2 ] (Sched.random ~seed) 4 in
      Game.successful o
      &&
      match List.assoc_opt 2 o.Game.results with
      | Some (Value.Vlist vs) ->
        List.map Value.to_int vs = [ 100; 101; 102; 103 ]
      | _ -> false)

let suite =
  [
    tc "init state" test_init_state;
    tc "yield rotates" test_yield_rotates;
    tc "sleep/wakeup cycle" test_sleep_wakeup_cycle;
    tc "wakeup idle cpu" test_wakeup_idle_cpu;
    tc "texit removes" test_texit_removes;
    tc "sched event by descheduled rejected" test_sched_event_by_descheduled_rejected;
    tc "unplaced thread rejected" test_unplaced_thread_rejected;
    tc "turn blocks descheduled" test_turn_blocks_descheduled;
    tc "turn consistent" test_turn_consistent;
    tc "multithreaded linking (thm 5.1)" test_multithreaded_linking;
    tc "sleep requires lock" test_sleep_requires_lock;
    tc "sleep releases lock atomically" test_sleep_releases_lock_atomically;
    tc "get_tid" test_get_tid;
    tc "qlock certify" test_qlock_certify;
    tc "qlock certify (asm)" test_qlock_certify_asm;
    tc "qlock game own cpus" test_qlock_game_own_cpus;
    tc "qlock game shared cpu" test_qlock_game_shared_cpu;
    tc "qlock sleeps not spins" test_qlock_sleeping_not_spinning;
    prop_qlock_random;
    tc "qlock refinement shared cpu" test_qlock_refinement_shared_cpu;
    tc "cv signal no sleeper" test_cv_signal_no_sleeper;
    tc "cv broadcast counts" test_cv_broadcast_counts;
    tc "ipc certify" test_ipc_certify;
    tc "ipc overlay blocks" test_ipc_overlay_blocks;
    tc "ipc overlay capacity" test_ipc_overlay_capacity;
    tc "ipc producer/consumer order" test_ipc_producer_consumer_order;
    tc "ipc translation wellformed" test_ipc_translation_wellformed;
    prop_ipc_random;
  ]
