test/test_clight_compile.ml: Alcotest Ccal_clight Ccal_compcertx Ccal_core Ccal_machine Env_context List Machine Option Printf QCheck String Util Value
