test/test_queues.ml: Alcotest Calculus Ccal_core Ccal_objects Event Game List Log Prog QCheck Queue_local Queue_shared Refinement Sched Sim_rel String Util Value
