test/test_machine_lib.ml: Alcotest Asm Asm_sem Atomic Ccal_core Ccal_machine Event Game Log Machine Mx86 Prog Pushpull QCheck Replay Sched Sim_rel String Util Value
