test/test_value_log.ml: Alcotest Ccal_core Event List Log QCheck Replay String Util Value
