test/test_liveness.ml: Alcotest Barrier Ccal_core Ccal_objects Ccal_verify Event Game List Lock_intf Log Prog QCheck Sched String Ticket_lock Util
