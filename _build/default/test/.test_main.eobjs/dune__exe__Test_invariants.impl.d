test/test_invariants.ml: Alcotest Ccal_compcertx Ccal_core Ccal_objects Event Game Layer Lock_intf Log Prog QCheck Refinement Rely_guarantee Sched Sim_rel String Thread_sched Ticket_lock Util Value
