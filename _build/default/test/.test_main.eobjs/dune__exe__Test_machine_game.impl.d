test/test_machine_game.ml: Alcotest Ccal_core Env_context Event Format Game Layer List Log Machine Option Prog QCheck Rely_guarantee Sched Strategy String Util Value
