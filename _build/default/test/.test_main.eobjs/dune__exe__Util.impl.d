test/util.ml: Abs Alcotest Ccal_core Env_context Event Layer Log Machine QCheck QCheck_alcotest String Value
