test/test_multithread.ml: Alcotest Calculus Ccal_core Ccal_objects Condvar Event Game Ipc List Lock_intf Log Prog QCheck Qlock Refinement Replay Sched Sim_rel String Thread_sched Util Value
