test/test_simulation_calculus.ml: Alcotest Calculus Ccal_core Env_context Event Layer List Log Machine Option Prog Refinement Rely_guarantee Sched Sim_rel Simulation String Util Value
