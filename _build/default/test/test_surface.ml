(* Edge-case and surface tests: environment contexts, layer combinators,
   abstract state, rely/guarantee algebra, pretty-printers, syntax sizes,
   and translation corner cases not covered by the integration suites. *)
open Ccal_core
open Ccal_objects
open Util
module C = Ccal_clight.Csyntax

(* ---- Abs ---- *)

let test_abs_basic () =
  let a = Abs.empty |> Abs.set "x" (vi 1) |> Abs.set "y" (vi 2) in
  check_int "get" 1 (Value.to_int (Abs.get "x" a));
  check_bool "find missing" true (Abs.find "z" a = None);
  check_bool "get missing is unit" true (Value.equal Value.unit (Abs.get "z" a));
  let a' = Abs.update "x" (fun v -> vi (Value.to_int v + 10)) a in
  check_int "update" 11 (Value.to_int (Abs.get "x" a'));
  check_int "fields" 2 (List.length (Abs.fields a));
  check_bool "equal" true (Abs.equal a (Abs.of_fields [ "y", vi 2; "x", vi 1 ]));
  check_bool "not equal" false (Abs.equal a a')

(* ---- Rely_guarantee algebra ---- *)

let test_rg_algebra () =
  let ev_count n = Rely_guarantee.make (Printf.sprintf "le%d" n)
      (fun i l -> Log.count (fun e -> e.Event.src = i) l <= n)
  in
  let l = log_of [ ev 1 "a"; ev 1 "b" ] in
  let c = Rely_guarantee.conj (ev_count 1) (ev_count 3) in
  let d = Rely_guarantee.disj (ev_count 1) (ev_count 3) in
  check_bool "conj fails" false (c.Rely_guarantee.holds 1 l);
  check_bool "disj holds" true (d.Rely_guarantee.holds 1 l);
  check_bool "conj with always is id" true
    (Rely_guarantee.same (Rely_guarantee.conj Rely_guarantee.always (ev_count 1)) (ev_count 1));
  check_bool "holds_for_all" true
    (Rely_guarantee.holds_for_all (ev_count 3) [ 1; 2 ] l);
  check_bool "implies_on" true
    (Rely_guarantee.implies_on (ev_count 1) (ev_count 3) ~tids:[ 1 ] ~logs:[ l ])

(* ---- Env_context ---- *)

let test_env_script_single_use () =
  let e = Env_context.of_script "s" [ [ ev 2 "a" ]; [ ev 2 "b" ] ] in
  check_int "first" 1 (List.length (e.Env_context.query ~focus:[ 1 ] Log.empty));
  check_int "second" 1 (List.length (e.Env_context.query ~focus:[ 1 ] Log.empty));
  check_int "exhausted" 0 (List.length (e.Env_context.query ~focus:[ 1 ] Log.empty))

let test_env_valid_events () =
  check_bool "foreign ok" true
    (Env_context.valid_events ~focus:[ 1 ] [ ev 2 "a" ]);
  check_bool "own rejected" false
    (Env_context.valid_events ~focus:[ 1 ] [ ev 1 "a" ])

let test_env_checked_raises () =
  let bad = Env_context.of_script "bad" [ [ ev 1 "a" ] ] in
  let checked = Env_context.checked ~rely:Rely_guarantee.always bad in
  check_bool "raises on own event" true
    (try ignore (checked.Env_context.query ~focus:[ 1 ] Log.empty); false
     with Env_context.Invalid_env _ -> true)

let test_env_checked_rely () =
  let rely = Rely_guarantee.make "none" (fun _ _ -> false) in
  let e = Env_context.of_script "e" [ [ ev 2 "a" ] ] in
  let checked = Env_context.checked ~rely e in
  check_bool "raises on rely violation" true
    (try ignore (checked.Env_context.query ~focus:[ 1 ] Log.empty); false
     with Env_context.Invalid_env _ -> true)

let test_env_of_strategies_blocked_skipped () =
  let blocked = { Strategy.step = (fun _ -> Strategy.Blocked) } in
  let live = Strategy.of_moves [ (fun _ -> [ ev 3 "x" ]) ] in
  let e = Env_context.of_strategies "mix" [ 2, blocked; 3, live ] ~rounds:2 in
  let evs = e.Env_context.query ~focus:[ 1 ] Log.empty in
  check_int "only the live participant emits" 1 (List.length evs)

(* ---- Layer combinators ---- *)

let test_layer_duplicate_prim_rejected () =
  check_bool "raises" true
    (try
       ignore (Layer.make "L" [ Layer.pure_private "p" (fun _ -> Value.unit);
                                Layer.pure_private "p" (fun _ -> Value.unit) ]);
       false
     with Invalid_argument _ -> true)

let test_layer_restrict () =
  let l = counter_layer () in
  let r = Layer.restrict [ "tick" ] l in
  check_bool "kept" true (Layer.has_prim "tick" r);
  check_bool "hidden" false (Layer.has_prim "read" r)

let test_layer_union_prim_clash () =
  let a = Layer.make "A" [ Layer.pure_private "p" (fun _ -> Value.unit) ] in
  let b = Layer.make "B" [ Layer.pure_private "p" (fun _ -> Value.unit) ] in
  check_bool "raises" true
    (try ignore (Layer.union a b); false with Invalid_argument _ -> true)

let test_layer_union_merges_init_abs () =
  let a =
    Layer.make ~init_abs:(fun _ -> Abs.of_fields [ "a", vi 1 ]) "A"
      [ Layer.pure_private "p" (fun _ -> Value.unit) ]
  in
  let b =
    Layer.make ~init_abs:(fun _ -> Abs.of_fields [ "b", vi 2 ]) "B"
      [ Layer.pure_private "q" (fun _ -> Value.unit) ]
  in
  let u = Layer.union a b in
  let abs = u.Layer.init_abs 1 in
  check_int "a" 1 (Value.to_int (Abs.get "a" abs));
  check_int "b" 2 (Value.to_int (Abs.get "b" abs))

(* ---- Strategy combinators ---- *)

let test_strategy_stopped () =
  match (Strategy.stopped (vi 5)).Strategy.step Log.empty with
  | Strategy.Move ([], Strategy.Done v) -> check_int "value" 5 (Value.to_int v)
  | _ -> Alcotest.fail "expected silent done"

let test_strategy_emit_once () =
  let s = Strategy.emit_once (fun i _ -> [ ev i "ping" ]) 4 in
  match s.Strategy.step Log.empty with
  | Strategy.Move ([ e ], Strategy.Done _) -> check_int "src" 4 e.Event.src
  | _ -> Alcotest.fail "expected one move"

(* ---- Sched.biased ---- *)

let test_biased_prefers_favored () =
  let s = Sched.biased ~favored:2 ~ratio:10 ~seed:1 in
  let picks =
    List.init 50 (fun step ->
        Option.get (s.Sched.pick ~step Log.empty ~runnable:[ 1; 2; 3 ]))
  in
  let favored = List.length (List.filter (fun t -> t = 2) picks) in
  check_bool "favored dominates" true (favored > 30)

(* ---- pretty-printers (smoke: they terminate and are non-empty) ---- *)

let test_pp_smoke () =
  let nonempty s = check_bool "nonempty" true (String.length s > 0) in
  nonempty (Value.to_string (Value.pair (vi 1) (Value.list [ vi 2; Value.bool true ])));
  nonempty (Log.to_string (log_of [ ev 1 "a" ]));
  nonempty (Format.asprintf "%a" Abs.pp (Abs.of_fields [ "k", vi 1 ]));
  nonempty (Format.asprintf "%a" C.pp_fn Ticket_lock.acq_fn);
  nonempty
    (Format.asprintf "%a" Ccal_machine.Asm.pp_fn
       (Ccal_compcertx.Compile.compile_fn Ticket_lock.acq_fn));
  nonempty
    (Format.asprintf "%a" Strategy.pp_step_result
       (Strategy.Move ([ ev 1 "a" ], Strategy.Done Value.unit)));
  nonempty (Format.asprintf "%a" Strategy.pp_step_result Strategy.Blocked)

let test_csyntax_sizes () =
  check_bool "acq has statements" true (C.fn_size Ticket_lock.acq_fn >= 5);
  check_int "skip" 1 (C.stmt_size C.Sskip);
  check_bool "asm size positive" true
    (Ccal_machine.Asm.size (Ccal_compcertx.Compile.compile_fn Ticket_lock.rel_fn) > 3)

(* ---- translation corner cases ---- *)

let test_qlock_translation_fast_path () =
  let l3 = Value.int 3 in
  let l =
    log_of
      [ ev ~args:[ l3 ] ~ret:(vi 0) 1 "acq"; ev ~args:[ l3; vi 1 ] 1 "rel" ]
  in
  match Log.chronological (Sim_rel.apply Qlock.r_qlock l) with
  | [ e ] -> check_string "fast acq_q" "acq_q" e.Event.tag
  | _ -> Alcotest.fail "expected a single acq_q"

let test_qlock_translation_handoff () =
  let l3 = Value.int 3 in
  let l =
    log_of
      [ (* thread 1 releases and wakes thread 2 *)
        ev ~args:[ l3 ] ~ret:(vi 0) 1 "acq";
        ev ~args:[ l3 ] ~ret:(vi 2) 1 "wakeup";
        ev ~args:[ l3; vi 2 ] 1 "rel";
        ev ~args:[ l3 ] 2 "wait" ]
  in
  Alcotest.(check (list (pair int string)))
    "rel_q then acq_q by the woken thread"
    [ 1, "rel_q"; 2, "acq_q" ]
    (List.map
       (fun (e : Event.t) -> e.src, e.Event.tag)
       (Log.chronological (Sim_rel.apply Qlock.r_qlock l)))

let test_ipc_translation_sleep_retry_erased () =
  let c5 = Value.int 5 in
  let l =
    log_of
      [ ev ~args:[ c5 ] ~ret:(Value.list []) 1 "acq";
        (* sleeping retry: publishes the unchanged buffer *)
        ev ~args:[ c5; Value.list [] ] 1 "rel";
        ev ~args:[ Value.int 1011 ] 1 "sleep" ]
  in
  check_int "nothing survives" 0 (Log.length (Sim_rel.apply Ipc.r_ipc l))

let test_ticket_translation_keeps_foreign () =
  let l = log_of [ ev 1 "FAI_t"; ev 2 "something_else" ] in
  let t = Sim_rel.apply Ticket_lock.r_ticket l in
  Alcotest.(check (list string))
    "foreign kept" [ "something_else" ]
    (List.map (fun (e : Event.t) -> e.Event.tag) (Log.chronological t))

(* ---- multi-lock independence at the object level ---- *)

let test_ticket_two_locks () =
  let layer = Ticket_lock.l0 () in
  let m = Ticket_lock.c_module () in
  let client b i =
    Prog.Module.link m
      (Prog.bind (Prog.call "acq" [ vi b ]) (fun _ ->
           Prog.seq (Prog.call "rel" [ vi b; vi i ]) (Prog.ret (vi i))))
  in
  let o =
    Game.run
      (Game.config layer [ 1, client 0 1; 2, client 7 2 ] (Sched.of_trace [ 1; 2; 1; 2; 1; 2; 1; 2 ]))
  in
  check_bool "both complete without interference" true (Game.successful o);
  let t = Sim_rel.apply Ticket_lock.r_ticket o.Game.log in
  Alcotest.(check (list int)) "lock 0 handoffs" [ 1 ] (Lock_intf.handoffs 0 t);
  Alcotest.(check (list int)) "lock 7 handoffs" [ 2 ] (Lock_intf.handoffs 7 t)

(* ---- wakeup on an empty channel ---- *)

let test_wakeup_empty_channel () =
  let layer = Thread_sched.mt_layer [ 1, 0 ] (Lock_intf.layer "L") in
  let v = expect_done layer (Prog.call "wakeup" [ vi 9 ]) in
  check_int "nobody" 0 (Value.to_int v)

(* ---- simulation drive: blocked strategies report cleanly ---- *)

let test_drive_blocked () =
  let blocked = { Strategy.step = (fun _ -> Strategy.Blocked) } in
  let d =
    Simulation.drive ~block_retries:3 1 blocked ~env:Env_context.empty
      ~init_log:Log.empty
  in
  check_bool "blocked" true d.Simulation.blocked;
  check_bool "no result" true (d.Simulation.ret = None)

let test_drive_refused () =
  let refusing = { Strategy.step = (fun _ -> Strategy.Refuse "nope") } in
  let d = Simulation.drive 1 refusing ~env:Env_context.empty ~init_log:Log.empty in
  check_bool "refused" true (d.Simulation.refused = Some "nope")

(* ---- condvar: broadcast with no sleepers ---- *)

let test_broadcast_empty () =
  let layer = Thread_sched.mt_layer [ 1, 0 ] (Lock_intf.layer "L") in
  let m = Condvar.c_module () in
  let v = expect_done layer (Prog.Module.link m (Prog.call "cv_broadcast" [ vi 9 ])) in
  check_int "zero woken" 0 (Value.to_int v)

(* ---- game: results of finished threads only ---- *)

let test_game_partial_results () =
  let layer =
    Layer.make "L"
      [ "never", Layer.Shared (fun _ _ _ -> Layer.Block);
        Layer.event_prim "go" (fun _ _ _ -> Ok (vi 1)) ]
  in
  let o =
    Game.run
      (Game.config layer
         [ 1, Prog.call "go" []; 2, Prog.call "never" [] ]
         Sched.round_robin)
  in
  check_bool "thread 1 finished" true (List.mem_assoc 1 o.Game.results);
  check_bool "thread 2 did not" false (List.mem_assoc 2 o.Game.results)

let suite =
  [
    tc "abs basic" test_abs_basic;
    tc "rely/guarantee algebra" test_rg_algebra;
    tc "env script single use" test_env_script_single_use;
    tc "env valid events" test_env_valid_events;
    tc "env checked raises on own event" test_env_checked_raises;
    tc "env checked enforces rely" test_env_checked_rely;
    tc "env of_strategies skips blocked" test_env_of_strategies_blocked_skipped;
    tc "layer duplicate prim rejected" test_layer_duplicate_prim_rejected;
    tc "layer restrict" test_layer_restrict;
    tc "layer union prim clash" test_layer_union_prim_clash;
    tc "layer union merges init_abs" test_layer_union_merges_init_abs;
    tc "strategy stopped" test_strategy_stopped;
    tc "strategy emit_once" test_strategy_emit_once;
    tc "biased scheduler" test_biased_prefers_favored;
    tc "pretty-printers smoke" test_pp_smoke;
    tc "csyntax sizes" test_csyntax_sizes;
    tc "qlock translation fast path" test_qlock_translation_fast_path;
    tc "qlock translation handoff" test_qlock_translation_handoff;
    tc "ipc translation erases sleep retry" test_ipc_translation_sleep_retry_erased;
    tc "ticket translation keeps foreign" test_ticket_translation_keeps_foreign;
    tc "ticket two locks independent" test_ticket_two_locks;
    tc "wakeup empty channel" test_wakeup_empty_channel;
    tc "drive blocked" test_drive_blocked;
    tc "drive refused" test_drive_refused;
    tc "broadcast empty" test_broadcast_empty;
    tc "game partial results" test_game_partial_results;
  ]
