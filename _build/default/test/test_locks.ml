(* Tests for the lock objects: atomic interface, ticket lock (Sec. 2,
   Fig. 10), MCS lock, and their certification (S15, S16). *)
open Ccal_core
open Ccal_objects
open Util

let acq b = Prog.call Lock_intf.acq_tag [ vi b ]
let rel b v = Prog.call Lock_intf.rel_tag [ vi b; vi v ]

(* ---- atomic lock interface ---- *)

let test_atomic_lock_roundtrip () =
  let layer = Lock_intf.layer "L" in
  let v =
    expect_done layer
      (Prog.seq_all [ acq 0; rel 0 33; acq 0 ])
  in
  check_int "published value" 33 (Value.to_int v)

let test_atomic_lock_blocks_when_held () =
  let layer = Lock_intf.layer "L" in
  let o =
    Game.run
      (Game.config layer
         [ 1, Prog.seq (acq 0) (Prog.call "acq" [ vi 0 ]) ]
         Sched.round_robin)
  in
  (* second acq by the same thread: self-deadlock *)
  match o.Game.status with
  | Game.Deadlock [ 1 ] -> ()
  | s -> Alcotest.failf "expected deadlock, got %a" Game.pp_status s

let test_atomic_rel_without_acq_stuck () =
  let layer = Lock_intf.layer "L" in
  ignore (expect_stuck layer (rel 0 1))

let test_locks_independent () =
  let layer = Lock_intf.layer "L" in
  let o =
    Game.run
      (Game.config layer
         [ 1, Prog.seq (acq 0) (rel 0 1); 2, Prog.seq (acq 1) (rel 1 2) ]
         (Sched.of_trace [ 1; 2; 1; 2 ]))
  in
  check_bool "both complete" true (Game.successful o)

let test_mutual_exclusion_predicate () =
  let good = log_of [ ev ~args:[ vi 0 ] 1 "acq"; ev ~args:[ vi 0; vi 1 ] 1 "rel";
                      ev ~args:[ vi 0 ] 2 "acq" ] in
  let bad = log_of [ ev ~args:[ vi 0 ] 1 "acq"; ev ~args:[ vi 0 ] 2 "acq" ] in
  check_bool "good" true (Lock_intf.mutual_exclusion good);
  check_bool "bad" false (Lock_intf.mutual_exclusion bad)

let test_handoffs () =
  let l = log_of [ ev ~args:[ vi 0 ] 1 "acq"; ev ~args:[ vi 0; vi 1 ] 1 "rel";
                   ev ~args:[ vi 0 ] 2 "acq" ] in
  Alcotest.(check (list int)) "order" [ 1; 2 ] (Lock_intf.handoffs 0 l)

(* ---- rely/guarantee helpers ---- *)

let test_lock_wellformed () =
  let inv = Rg.lock_wellformed ~acq_tag:"acq" ~rel_tag:"rel" in
  let ok = log_of [ ev ~args:[ vi 0 ] 1 "acq"; ev ~args:[ vi 0; vi 9 ] 1 "rel" ] in
  let double = log_of [ ev ~args:[ vi 0 ] 1 "acq"; ev ~args:[ vi 0 ] 1 "acq" ] in
  let orphan = log_of [ ev ~args:[ vi 0; vi 9 ] 1 "rel" ] in
  check_bool "ok" true (inv.Rely_guarantee.holds 1 ok);
  check_bool "double acq" false (inv.Rely_guarantee.holds 1 double);
  check_bool "orphan rel" false (inv.Rely_guarantee.holds 1 orphan);
  check_bool "other thread unaffected" true (inv.Rely_guarantee.holds 2 double)

let test_releases_within () =
  let inv = Rg.releases_within ~bound:2 ~acq_tag:"acq" ~rel_tag:"rel" in
  let quick =
    log_of [ ev ~args:[ vi 0 ] 1 "acq"; ev 2 "x"; ev ~args:[ vi 0; vi 1 ] 1 "rel" ]
  in
  let slow =
    log_of [ ev ~args:[ vi 0 ] 1 "acq"; ev 2 "x"; ev 2 "y"; ev 2 "z" ]
  in
  check_bool "quick" true (inv.Rely_guarantee.holds 1 quick);
  check_bool "slow" false (inv.Rely_guarantee.holds 1 slow)

let test_held_locks () =
  let l = log_of [ ev ~args:[ vi 0 ] 1 "acq"; ev ~args:[ vi 4 ] 1 "acq";
                   ev ~args:[ vi 0; vi 1 ] 1 "rel" ] in
  Alcotest.(check (list int)) "held" [ 4 ] (Rg.held_locks ~acq_tag:"acq" ~rel_tag:"rel" 1 l)

(* ---- ticket lock ---- *)

let test_rticket_replay () =
  let l =
    log_of
      [ ev ~args:[ vi 0 ] 1 "FAI_t"; ev ~args:[ vi 0 ] 2 "FAI_t";
        ev ~args:[ vi 0 ] 1 "inc_n" ]
  in
  let st = Replay.run_exn (Ticket_lock.replay_ticket 0) l in
  check_int "next" 2 st.Ticket_lock.next;
  check_int "serving" 1 st.Ticket_lock.serving;
  (* other locks unaffected *)
  let st1 = Replay.run_exn (Ticket_lock.replay_ticket 1) l in
  check_int "other lock" 0 st1.Ticket_lock.next

let test_ticket_solo_roundtrip () =
  let layer = Ticket_lock.l0 () in
  let m = Ticket_lock.c_module () in
  let prog =
    Prog.Module.link m (Prog.seq_all [ acq 0; rel 0 5; acq 0 ])
  in
  check_int "sees published" 5 (Value.to_int (expect_done layer prog))

let test_ticket_certify_c () =
  match Ticket_lock.certify ~focus:[ 1; 2 ] () with
  | Ok cert -> check_bool "fun rule" true (cert.Calculus.rule = Calculus.Fun)
  | Error e -> Alcotest.failf "%a" Calculus.pp_error e

let test_ticket_certify_asm () =
  match Ticket_lock.certify ~focus:[ 1 ] ~use_asm:true () with
  | Ok _ -> ()
  | Error e -> Alcotest.failf "%a" Calculus.pp_error e

let test_ticket_low_strategies () =
  (* the hand-written automata of Sec. 2 simulate the C code (fun-lift,
     identity relation) *)
  let layer = Ticket_lock.l0 () in
  let m = Ticket_lock.c_module () in
  match
    Simulation.check_strategies Sim_rel.id ~tid:1
      ~impl:(fun () ->
        Machine.strategy_of_prog layer 1 (Prog.Module.link m (acq 0)))
      ~spec:(fun () -> Ticket_lock.phi_acq_low 1 0)
      ~envs:[ Env_context.empty ]
  with
  | Ok _ -> ()
  | Error f -> Alcotest.failf "%a" Simulation.pp_failure f

let test_ticket_rel_strategy () =
  let layer = Ticket_lock.l0 () in
  let m = Ticket_lock.c_module () in
  match
    Simulation.check_strategies Sim_rel.id ~tid:1
      ~impl:(fun () ->
        Machine.strategy_of_prog layer 1
          (Prog.Module.link m (Prog.seq (acq 0) (rel 0 7))))
      ~spec:(fun () ->
        let acq_s = Ticket_lock.phi_acq_low 1 0 in
        let rec chain (s : Strategy.t) =
          {
            Strategy.step =
              (fun l ->
                match s.Strategy.step l with
                | Strategy.Move (evs, Strategy.Done _) ->
                  Strategy.Move (evs, Strategy.Next (Ticket_lock.phi_rel_low 1 0 (vi 7)))
                | Strategy.Move (evs, Strategy.Next s') ->
                  Strategy.Move (evs, Strategy.Next (chain s'))
                | r -> r);
          }
        in
        chain acq_s)
      ~envs:[ Env_context.empty ]
  with
  | Ok _ -> ()
  | Error f -> Alcotest.failf "%a" Simulation.pp_failure f

let lock_clients rounds i =
  let rec go k =
    if k = 0 then Prog.ret (vi i)
    else
      Prog.bind (acq 0) (fun _ ->
          Prog.seq (rel 0 ((10 * i) + k)) (go (k - 1)))
  in
  go rounds

let run_ticket_game ?(threads = [ 1; 2; 3 ]) ?(rounds = 2) sched =
  let layer = Ticket_lock.l0 () in
  let m = Ticket_lock.c_module () in
  Game.run
    (Game.config layer
       (List.map (fun i -> i, Prog.Module.link m (lock_clients rounds i)) threads)
       sched)

let test_ticket_game_mutex () =
  List.iter
    (fun sched ->
      let o = run_ticket_game sched in
      check_bool "completes" true (Game.successful o);
      check_bool "translated log mutex" true
        (Lock_intf.mutual_exclusion (Sim_rel.apply Ticket_lock.r_ticket o.Game.log)))
    (Sched.default_suite ~seeds:8)

let test_ticket_fifo () =
  List.iter
    (fun sched ->
      let o = run_ticket_game sched in
      check_bool "FIFO by tickets" true
        (Ccal_verify.Progress.fifo_order ~ticket_tag:"FAI_t" ~enter_tag:"pull"
           o.Game.log))
    (Sched.default_suite ~seeds:8)

let prop_ticket_random_schedules =
  qtc ~count:40 "ticket lock safe under random schedules"
    QCheck.(int_range 1 10_000)
    (fun seed ->
      let o = run_ticket_game (Sched.random ~seed) in
      Game.successful o
      && Lock_intf.mutual_exclusion (Sim_rel.apply Ticket_lock.r_ticket o.Game.log)
      && Ccal_verify.Progress.fifo_order ~ticket_tag:"FAI_t" ~enter_tag:"pull"
           o.Game.log)

(* ---- MCS lock ---- *)

let test_mcs_solo_roundtrip () =
  let layer = Mcs_lock.l0 () in
  let m = Mcs_lock.c_module () in
  let prog = Prog.Module.link m (Prog.seq_all [ acq 0; rel 0 9; acq 0 ]) in
  check_int "sees published" 9 (Value.to_int (expect_done layer prog))

let test_mcs_certify () =
  match Mcs_lock.certify ~focus:[ 1; 2 ] () with
  | Ok _ -> ()
  | Error e -> Alcotest.failf "%a" Calculus.pp_error e

let test_mcs_certify_asm () =
  match Mcs_lock.certify ~focus:[ 1 ] ~use_asm:true () with
  | Ok _ -> ()
  | Error e -> Alcotest.failf "%a" Calculus.pp_error e

let run_mcs_game ?(threads = [ 1; 2; 3 ]) ?(rounds = 2) sched =
  let layer = Mcs_lock.l0 () in
  let m = Mcs_lock.c_module () in
  Game.run
    (Game.config ~max_steps:400_000 layer
       (List.map (fun i -> i, Prog.Module.link m (lock_clients rounds i)) threads)
       sched)

let test_mcs_game_mutex () =
  List.iter
    (fun sched ->
      let o = run_mcs_game sched in
      check_bool "completes" true (Game.successful o);
      check_bool "mutex" true
        (Lock_intf.mutual_exclusion (Sim_rel.apply Mcs_lock.r_mcs o.Game.log)))
    (Sched.default_suite ~seeds:6)

let test_mcs_fifo_by_xchg () =
  List.iter
    (fun sched ->
      let o = run_mcs_game sched in
      check_bool "FIFO by xchg order" true
        (Ccal_verify.Progress.fifo_order ~ticket_tag:"xchg" ~enter_tag:"pull"
           o.Game.log))
    (Sched.default_suite ~seeds:6)

(* ---- interchangeability (Sec. 6) ---- *)

let test_locks_interchangeable () =
  (* the same client and the same overlay work over either implementation *)
  let client i = Prog.bind (acq 0) (fun _ -> Prog.seq (rel 0 i) (Prog.ret (vi i))) in
  let check_impl name underlay m r =
    match
      Refinement.check ~underlay ~impl:m ~overlay:(Ticket_lock.overlay ())
        ~rel:r ~client ~tids:[ 1; 2 ] ~scheds:(Sched.default_suite ~seeds:3) ()
    with
    | Ok _ -> ()
    | Error f -> Alcotest.failf "%s: %a" name Refinement.pp_failure f
  in
  check_impl "ticket" (Ticket_lock.l0 ()) (Ticket_lock.c_module ()) Ticket_lock.r_ticket;
  check_impl "mcs" (Mcs_lock.l0 ()) (Mcs_lock.c_module ()) Mcs_lock.r_mcs

let suite =
  [
    tc "atomic lock roundtrip" test_atomic_lock_roundtrip;
    tc "atomic lock blocks when held" test_atomic_lock_blocks_when_held;
    tc "atomic rel without acq stuck" test_atomic_rel_without_acq_stuck;
    tc "locks independent" test_locks_independent;
    tc "mutual exclusion predicate" test_mutual_exclusion_predicate;
    tc "handoffs" test_handoffs;
    tc "lock wellformed invariant" test_lock_wellformed;
    tc "releases within bound" test_releases_within;
    tc "held locks" test_held_locks;
    tc "Rticket replay" test_rticket_replay;
    tc "ticket solo roundtrip" test_ticket_solo_roundtrip;
    tc "ticket certify (C)" test_ticket_certify_c;
    tc "ticket certify (asm)" test_ticket_certify_asm;
    tc "ticket phi'_acq automaton" test_ticket_low_strategies;
    tc "ticket phi'_rel automaton" test_ticket_rel_strategy;
    tc "ticket game mutex" test_ticket_game_mutex;
    tc "ticket FIFO" test_ticket_fifo;
    prop_ticket_random_schedules;
    tc "mcs solo roundtrip" test_mcs_solo_roundtrip;
    tc "mcs certify (C)" test_mcs_certify;
    tc "mcs certify (asm)" test_mcs_certify_asm;
    tc "mcs game mutex" test_mcs_game_mutex;
    tc "mcs FIFO by xchg" test_mcs_fifo_by_xchg;
    tc "locks interchangeable" test_locks_interchangeable;
  ]
