(* Tests for the local queue (dll vs logical list) and the shared queue
   (Sec. 4.2) (S17). *)
open Ccal_core
open Ccal_objects
open Util

(* ---- local queue ---- *)

let heap = Queue_local.heap_layer
let absq = Queue_local.abs_layer

let link_local p = Prog.Module.link (Queue_local.c_module ()) p

let enq q v = Prog.call "enQ" [ vi q; vi v ]
let deq q = Prog.call "deQ" [ vi q ]
let qlen q = Prog.call "qlen" [ vi q ]

let test_local_empty_deq () =
  check_int "-1 on empty" (-1) (Value.to_int (expect_done (heap ()) (link_local (deq 0))))

let test_local_fifo () =
  let prog =
    link_local (Prog.seq_all [ enq 0 5; enq 0 6; enq 0 7; deq 0 ])
  in
  check_int "first out" 5 (Value.to_int (expect_done (heap ()) prog))

let test_local_len () =
  let prog = link_local (Prog.seq_all [ enq 0 1; enq 0 2; deq 0; qlen 0 ]) in
  check_int "len" 1 (Value.to_int (expect_done (heap ()) prog))

let test_local_drain_refill () =
  let prog =
    link_local
      (Prog.seq_all [ enq 0 1; deq 0; deq 0; enq 0 9; deq 0 ])
  in
  check_int "after refill" 9 (Value.to_int (expect_done (heap ()) prog))

let test_local_queues_independent () =
  let prog = link_local (Prog.seq_all [ enq 0 1; enq 5 2; deq 5 ]) in
  check_int "queue 5" 2 (Value.to_int (expect_done (heap ()) prog))

let test_abs_layer_spec () =
  let prog = Prog.seq_all [ enq 0 4; enq 0 5; deq 0; qlen 0 ] in
  check_int "abstract len" 1 (Value.to_int (expect_done (absq ()) prog))

let test_local_certify () =
  match Queue_local.certify () with
  | Ok _ -> ()
  | Error e -> Alcotest.failf "%a" Calculus.pp_error e

let test_local_certify_asm () =
  match Queue_local.certify ~use_asm:true () with
  | Ok _ -> ()
  | Error e -> Alcotest.failf "%a" Calculus.pp_error e

(* random op sequences: dll implementation agrees with the logical list *)
let ops_gen =
  QCheck.list_of_size (QCheck.Gen.int_range 0 40)
    (QCheck.make
       QCheck.Gen.(
         frequency
           [ 3, map (fun v -> `Enq v) (int_range 0 99); 2, return `Deq;
             1, return `Len ]))

let prog_of_ops q ops =
  Prog.seq_all
    (List.map
       (function
         | `Enq v -> enq q v
         | `Deq -> deq q
         | `Len -> qlen q)
       ops
    @ [ qlen q ])

let collect_results layer prog =
  (* run and collect each op's return by instrumenting with a model fold
     instead: simpler — compare final machine results of impl vs spec by
     running the same op list and pairing outcomes *)
  expect_done layer prog

let prop_local_queue_refines_list =
  qtc ~count:150 "dll queue = logical list on random op sequences" ops_gen
    (fun ops ->
      let impl = collect_results (heap ()) (link_local (prog_of_ops 0 ops)) in
      let spec = collect_results (absq ()) (prog_of_ops 0 ops) in
      Value.equal impl spec)

(* per-op comparison, not just the final value *)
let prop_local_queue_per_op =
  qtc ~count:100 "dll queue matches per-op results" ops_gen (fun ops ->
      (* execute the whole sequence, collecting each op's result *)
      let run layer link =
        let rec build acc = function
          | [] -> Prog.ret (Value.list (List.rev acc))
          | op :: rest ->
            Prog.bind
              (match op with
              | `Enq v -> enq 0 v
              | `Deq -> deq 0
              | `Len -> qlen 0)
              (fun r -> build (r :: acc) rest)
        in
        expect_done layer (link (build [] ops))
      in
      let impl = run (heap ()) link_local in
      let spec = run (absq ()) (fun p -> p) in
      Value.equal impl spec)

(* ---- shared queue ---- *)

let sq = Queue_shared.underlay
let sq_over = Queue_shared.overlay

let link_shared p = Prog.Module.link (Queue_shared.c_module ()) p

let enqs q v = Prog.call "enQ_s" [ vi q; vi v ]
let deqs q = Prog.call "deQ_s" [ vi q ]

let test_shared_solo () =
  let prog = link_shared (Prog.seq_all [ enqs 0 4; enqs 0 5; deqs 0 ]) in
  check_int "fifo" 4 (Value.to_int (expect_done (sq ()) prog))

let test_shared_empty () =
  check_int "-1" (-1) (Value.to_int (expect_done (sq ()) (link_shared (deqs 0))))

let test_shared_overlay_replay () =
  let l =
    log_of
      [ ev ~args:[ vi 0; vi 7 ] 1 "enQ_s"; ev ~args:[ vi 0; vi 8 ] 2 "enQ_s";
        ev ~args:[ vi 0 ] ~ret:(vi 7) 1 "deQ_s" ]
  in
  match Queue_shared.replay_queue 0 l with
  | Ok [ Value.Vint 8 ] -> ()
  | Ok vs -> Alcotest.failf "unexpected queue %s" (Value.to_string (Value.list vs))
  | Error msg -> Alcotest.fail msg

let test_rlock_merges () =
  (* acq ... rel with a longer published list becomes one enQ_s *)
  let l =
    log_of
      [ ev ~args:[ vi 0 ] ~ret:(Value.list []) 1 "acq";
        ev ~args:[ vi 0; Value.list [ vi 5 ] ] 1 "rel" ]
  in
  let t = Sim_rel.apply Queue_shared.r_lock l in
  match Log.chronological t with
  | [ e ] ->
    check_string "merged" "enQ_s" e.Event.tag;
    check_bool "value" true (e.Event.args = [ vi 0; vi 5 ])
  | _ -> Alcotest.fail "expected a single merged event"

let test_rlock_deq_empty () =
  let l =
    log_of
      [ ev ~args:[ vi 0 ] ~ret:(Value.list []) 1 "acq";
        ev ~args:[ vi 0; Value.list [] ] 1 "rel" ]
  in
  match Log.chronological (Sim_rel.apply Queue_shared.r_lock l) with
  | [ e ] ->
    check_string "deq" "deQ_s" e.Event.tag;
    check_int "ret -1" (-1) (Value.to_int e.Event.ret)
  | _ -> Alcotest.fail "expected one event"

let test_shared_certify () =
  match Queue_shared.certify () with
  | Ok _ -> ()
  | Error e -> Alcotest.failf "%a" Calculus.pp_error e

let test_full_stack_certify () =
  match Queue_shared.full_stack_certify () with
  | Ok c ->
    check_bool "vcomp at top" true (c.Calculus.rule = Calculus.Vcomp);
    check_bool "relation composed" true
      (String.length c.Calculus.judgment.Calculus.rel.Sim_rel.name > 5)
  | Error e -> Alcotest.failf "%a" Calculus.pp_error e

let test_full_stack_soundness () =
  match Queue_shared.full_stack_certify () with
  | Error e -> Alcotest.failf "%a" Calculus.pp_error e
  | Ok cert -> (
    let client i =
      Prog.seq_all [ enqs 0 (10 + i); enqs 0 (20 + i); deqs 0; deqs 0 ]
    in
    match
      Refinement.check_cert cert ~client ~scheds:(Sched.default_suite ~seeds:4)
    with
    | Ok _ -> ()
    | Error f -> Alcotest.failf "%a" Refinement.pp_failure f)

let prop_shared_queue_conservation =
  qtc ~count:30 "enqueued = dequeued + remaining" QCheck.(int_range 1 5_000)
    (fun seed ->
      let layer = sq () in
      let m = Queue_shared.c_module () in
      let client i =
        Prog.Module.link m
          (Prog.seq_all [ enqs 0 i; enqs 0 (100 + i); deqs 0 ])
      in
      let o =
        Game.run
          (Game.config layer [ 1, client 1; 2, client 2 ] (Sched.random ~seed))
      in
      if not (Game.successful o) then false
      else
        let t = Sim_rel.apply Queue_shared.r_lock o.Game.log in
        let enqs_n = Log.count (fun e -> String.equal e.Event.tag "enQ_s") t in
        let deqs_n = Log.count (fun e -> String.equal e.Event.tag "deQ_s") t in
        match Queue_shared.replay_queue 0 t with
        | Ok remaining -> enqs_n = 4 && deqs_n = 2 && List.length remaining = 2
        | Error _ -> false)

let _ = sq_over

let suite =
  [
    tc "local empty deq" test_local_empty_deq;
    tc "local fifo" test_local_fifo;
    tc "local len" test_local_len;
    tc "local drain refill" test_local_drain_refill;
    tc "local queues independent" test_local_queues_independent;
    tc "abs layer spec" test_abs_layer_spec;
    tc "local certify" test_local_certify;
    tc "local certify (asm)" test_local_certify_asm;
    prop_local_queue_refines_list;
    prop_local_queue_per_op;
    tc "shared solo" test_shared_solo;
    tc "shared empty" test_shared_empty;
    tc "shared overlay replay" test_shared_overlay_replay;
    tc "Rlock merges enQ" test_rlock_merges;
    tc "Rlock deq empty" test_rlock_deq_empty;
    tc "shared certify" test_shared_certify;
    tc "full stack certify (Fig. 5 + queue)" test_full_stack_certify;
    tc "full stack soundness" test_full_stack_soundness;
    prop_shared_queue_conservation;
  ]
