(* Cross-cutting invariants: relation algebra, guarantee checking in
   games, refinement options, and miscellaneous totality properties. *)
open Ccal_core
open Ccal_objects
open Util

let event_gen =
  QCheck.Gen.(
    let* src = int_range 1 4 in
    let* tag = oneofl [ "FAI_t"; "get_n"; "inc_n"; "pull"; "push"; "other" ] in
    let* b = int_range 0 2 in
    return (Event.make ~args:[ Value.int b ] src tag))
  |> QCheck.make

let log_gen =
  QCheck.map
    (fun evs -> log_of evs)
    (QCheck.list_of_size (QCheck.Gen.int_range 0 25) event_gen)

(* relation algebra *)

let prop_compose_assoc =
  qtc "sim_rel composition associative" log_gen (fun l ->
      let r1 = Sim_rel.of_table "r1" [ "FAI_t", `Drop ] in
      let r2 = Sim_rel.of_table "r2" [ "pull", `To "acq" ] in
      let r3 = Sim_rel.of_table "r3" [ "acq", `To "enter" ] in
      Log.equal
        (Sim_rel.apply (Sim_rel.compose (Sim_rel.compose r1 r2) r3) l)
        (Sim_rel.apply (Sim_rel.compose r1 (Sim_rel.compose r2 r3)) l))

let prop_id_unit =
  qtc "id is a unit for composition" log_gen (fun l ->
      let r = Sim_rel.of_table "r" [ "get_n", `Drop ] in
      Log.equal
        (Sim_rel.apply (Sim_rel.compose Sim_rel.id r) l)
        (Sim_rel.apply (Sim_rel.compose r Sim_rel.id) l))

let prop_related_iff_apply =
  qtc "related = equality after apply" log_gen (fun l ->
      let r = Ticket_lock.r_ticket in
      Sim_rel.related r l (Sim_rel.apply r l))

(* replay totality: the ticket replay never raises on arbitrary logs *)

let prop_ticket_replay_total =
  qtc "Rticket total" log_gen (fun l ->
      match Ticket_lock.replay_ticket 0 l with
      | Ok st -> st.Ticket_lock.next >= 0 && st.Ticket_lock.serving >= 0
      | Error _ -> true)

let prop_sched_replay_never_raises =
  qtc "Rsched returns, never raises" log_gen (fun l ->
      let placement = [ 1, 0; 2, 0; 3, 1; 4, 1 ] in
      match Thread_sched.replay_sched placement l with
      | Ok _ | Error _ -> true)

(* guarantee checking inside games *)

let test_game_check_guar_flags_violation () =
  (* a guarantee that forbids more than one event per thread *)
  let base = counter_layer () in
  let layer =
    Layer.with_conditions ~rely:Rely_guarantee.always
      ~guar:
        (Rely_guarantee.make "one-shot" (fun i l ->
             Log.count (fun (e : Event.t) -> e.src = i) l <= 1))
      base
  in
  let prog = Prog.seq (Prog.call "tick" [ vi 0 ]) (Prog.call "tick" [ vi 0 ]) in
  let o = Game.run (Game.config ~check_guar:true layer [ 1, prog ] Sched.round_robin) in
  check_bool "violation recorded" true (o.Game.guar_violations <> []);
  check_bool "not successful" false (Game.successful o)

let test_game_check_guar_clean () =
  let layer = counter_layer () in
  let o =
    Game.run
      (Game.config ~check_guar:true layer [ 1, Prog.call "tick" [ vi 0 ] ]
         Sched.round_robin)
  in
  check_bool "no violations" true (o.Game.guar_violations = [])

(* lock guarantee holds along every certified run *)

let prop_ticket_guarantee_holds =
  qtc ~count:25 "atomic lock condition holds on translated runs"
    QCheck.(int_range 1 2_000) (fun seed ->
      let layer = Ticket_lock.l0 () in
      let m = Ticket_lock.c_module () in
      let client i =
        Prog.Module.link m
          (Prog.bind (Prog.call "acq" [ vi 0 ]) (fun v ->
               Prog.call "rel" [ vi 0; Value.int (Value.to_int v + i) ]))
      in
      let o =
        Game.run (Game.config layer [ 1, client 1; 2, client 2 ] (Sched.random ~seed))
      in
      let t = Sim_rel.apply Ticket_lock.r_ticket o.Game.log in
      let cond = Lock_intf.condition () in
      Rely_guarantee.holds_for_all cond [ 1; 2 ] t)

(* refinement with expect_all_done:false tolerates partial runs *)

let test_refinement_partial_runs () =
  let layer = Lock_intf.layer "L" in
  (* client 2 blocks forever on a lock client 1 holds and never releases *)
  let client i =
    if i = 1 then Prog.call "acq" [ vi 0 ]
    else Prog.call "acq" [ vi 0 ]
  in
  match
    Refinement.check ~expect_all_done:false ~underlay:layer
      ~impl:Prog.Module.empty ~overlay:layer ~rel:Sim_rel.id ~client
      ~tids:[ 1; 2 ] ~scheds:[ Sched.round_robin ] ()
  with
  | Ok _ -> ()
  | Error f -> Alcotest.failf "%a" Refinement.pp_failure f

let test_refinement_strict_rejects_deadlock () =
  let layer = Lock_intf.layer "L" in
  let client _ = Prog.seq (Prog.call "acq" [ vi 0 ]) (Prog.call "acq" [ vi 0 ]) in
  match
    Refinement.check ~underlay:layer ~impl:Prog.Module.empty ~overlay:layer
      ~rel:Sim_rel.id ~client ~tids:[ 1 ] ~scheds:[ Sched.round_robin ] ()
  with
  | Error f ->
    check_bool "mentions incompletion" true
      (String.length f.Refinement.reason > 0)
  | Ok _ -> Alcotest.fail "self-deadlock accepted under strict mode"

(* module inspection *)

let test_module_find_names () =
  let m = Ticket_lock.c_module () in
  Alcotest.(check (list string)) "names" [ "acq"; "rel" ] (Prog.Module.names m);
  check_bool "find" true (Prog.Module.find "acq" m <> None);
  check_bool "find missing" true (Prog.Module.find "zzz" m = None)

(* value projections raise cleanly *)

let test_value_projection_errors () =
  let raises f = try ignore (f ()); false with Value.Type_error _ -> true in
  check_bool "to_pair of int" true (raises (fun () -> Value.to_pair (vi 1)));
  check_bool "to_list of int" true (raises (fun () -> Value.to_list (vi 1)));
  check_bool "to_bool of list" true
    (raises (fun () -> Value.to_bool (Value.list [])))

(* memory algebra: compose_many rejects conflicts *)

let test_compose_many_conflict () =
  let module M = Ccal_compcertx.Mem_algebra in
  let m1, _ = M.alloc M.empty 0 2 in
  let m2, _ = M.alloc M.empty 0 2 in
  check_bool "conflict" true (M.compose_many [ m1; m2 ] = None)

let suite =
  [
    prop_compose_assoc;
    prop_id_unit;
    prop_related_iff_apply;
    prop_ticket_replay_total;
    prop_sched_replay_never_raises;
    tc "game check_guar flags violation" test_game_check_guar_flags_violation;
    tc "game check_guar clean" test_game_check_guar_clean;
    prop_ticket_guarantee_holds;
    tc "refinement tolerates partial runs" test_refinement_partial_runs;
    tc "refinement strict rejects deadlock" test_refinement_strict_rejects_deadlock;
    tc "module find/names" test_module_find_names;
    tc "value projection errors" test_value_projection_errors;
    tc "compose_many conflict" test_compose_many_conflict;
  ]
