.PHONY: all build test check check-test-count check-parallel explore bench clean

all: build

build:
	dune build

test:
	dune runtest --force

# Regression guard: the suite must never silently shrink — a dune or
# module-wiring mistake can drop a whole test file from the runner while
# everything still "passes".  Bump the floor when tests are added.
TEST_COUNT_FLOOR := 333

check-test-count:
	@out=$$(dune runtest --force 2>&1); status=$$?; \
	echo "$$out" | tail -2; \
	if [ $$status -ne 0 ]; then exit $$status; fi; \
	count=$$(echo "$$out" | grep -Eo '[0-9]+ tests run' | grep -Eo '[0-9]+' | tail -1); \
	if [ -z "$$count" ]; then echo "check-test-count: could not parse test count"; exit 1; fi; \
	if [ "$$count" -lt "$(TEST_COUNT_FLOOR)" ]; then \
	  echo "check-test-count: REGRESSION - $$count tests run, floor is $(TEST_COUNT_FLOOR)"; exit 1; \
	else \
	  echo "check-test-count: OK ($$count tests run >= floor $(TEST_COUNT_FLOOR))"; \
	fi

# The tier-1 gate: everything CI runs, runnable locally in one shot.
# Runs the full suite (with the test-count floor) and the
# DPOR-vs-exhaustive agreement check on the headline game.
check: build check-test-count
	dune exec bin/ccal_cli.exe -- explore lock --threads 3 --depth 5

# The parallel-checking gate (DESIGN.md S24): the same verdicts must come
# out of the sequential oracle and the 4-domain pool.  CI runs `check`
# under both via the CCAL_JOBS matrix; this is the local one-shot.
check-parallel:
	CCAL_JOBS=1 dune exec bin/ccal_cli.exe -- explore lock --threads 3 --depth 5
	CCAL_JOBS=4 dune exec bin/ccal_cli.exe -- explore lock --threads 3 --depth 5
	dune exec bin/ccal_cli.exe -- stack --strategy dpor:4 --jobs 4

explore:
	dune exec bin/ccal_cli.exe -- explore lock --threads 3 --depth 5
	dune exec bin/ccal_cli.exe -- explore queue --threads 2 --depth 4
	dune exec bin/ccal_cli.exe -- explore queue-atomic --threads 3 --depth 4 --mode events

bench:
	dune exec bench/main.exe

clean:
	dune clean
