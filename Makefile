.PHONY: all build test check check-test-count check-parallel check-cache check-robust check-speedup check-kv check-tso check-crash check-optimal examples explore bench clean

all: build

build:
	dune build

test:
	dune runtest --force

# Regression guard: the suite must never silently shrink — a dune or
# module-wiring mistake can drop a whole test file from the runner while
# everything still "passes".  Bump the floor when tests are added.
TEST_COUNT_FLOOR := 472

check-test-count:
	@out=$$(dune runtest --force 2>&1); status=$$?; \
	echo "$$out" | tail -2; \
	if [ $$status -ne 0 ]; then exit $$status; fi; \
	count=$$(echo "$$out" | grep -Eo '[0-9]+ tests run' | grep -Eo '[0-9]+' | tail -1); \
	if [ -z "$$count" ]; then echo "check-test-count: could not parse test count"; exit 1; fi; \
	if [ "$$count" -lt "$(TEST_COUNT_FLOOR)" ]; then \
	  echo "check-test-count: REGRESSION - $$count tests run, floor is $(TEST_COUNT_FLOOR)"; exit 1; \
	else \
	  echo "check-test-count: OK ($$count tests run >= floor $(TEST_COUNT_FLOOR))"; \
	fi

# The tier-1 gate: everything CI runs, runnable locally in one shot.
# Runs the full suite (with the test-count floor), the DPOR-vs-exhaustive
# agreement check on the headline game, and the certificate-cache and
# robustness gates.
check: build check-test-count check-cache check-robust check-speedup check-kv check-tso check-crash check-optimal
	dune exec bin/ccal_cli.exe -- explore lock --threads 3 --depth 5

# The speedup gate (DESIGN.md S24): the perf-gate alcotest section runs
# the headline Llock game at jobs 1 and 4 and fails when a >= 4-core host
# shows less than a 2x jobs=4 speedup.  On smaller hosts the speedup
# assertion self-skips (OCaml 5's minor GC is a stop-the-world rendezvous
# across domains — extra domains cannot win on one core) and the section
# pins the sequential-throughput floor and cross-jobs verdict identity
# instead.  `--parallel-only` regenerates BENCH_parallel.json with the
# full measured curve.
check-speedup: build
	dune exec test/test_main.exe -- test perf-gate
	_build/default/bench/main.exe --parallel-only

# The certificate-cache gate (DESIGN.md S26): a warm stack run over a
# populated store must print a bit-identical canonical report and finish
# at least 2x faster than the cold run that filled it.  Uses the built
# binary directly so the wall-clock ratio isn't swamped by dune overhead.
CCAL_BIN := _build/default/bin/ccal_cli.exe
CACHE_CHECK_DIR := _build/ccal-cache-check

check-cache: build
	@rm -rf $(CACHE_CHECK_DIR); \
	t0=$$(date +%s%N); \
	$(CCAL_BIN) stack --cache-dir $(CACHE_CHECK_DIR) --report _build/cache-cold.txt --jobs 2 || exit 1; \
	t1=$$(date +%s%N); \
	$(CCAL_BIN) stack --cache-dir $(CACHE_CHECK_DIR) --report _build/cache-warm.txt --jobs 2 || exit 1; \
	t2=$$(date +%s%N); \
	cmp _build/cache-cold.txt _build/cache-warm.txt || { \
	  echo "check-cache: REGRESSION - warm report differs from cold"; exit 1; }; \
	cold=$$(( (t1 - t0) / 1000000 )); warm=$$(( (t2 - t1) / 1000000 )); \
	echo "check-cache: cold $${cold}ms, warm $${warm}ms"; \
	if [ $$(( warm * 2 )) -gt $$cold ]; then \
	  echo "check-cache: REGRESSION - warm run not >= 2x faster"; exit 1; fi; \
	echo "check-cache: OK (reports identical, >= 2x speedup)"
	@$(CCAL_BIN) cache stats --cache-dir $(CACHE_CHECK_DIR)

# The kv-stack gate (DESIGN.md S28): all three kv edges (hash table over
# its shards, block cache over the disk, composed service over the map
# spec) must certify, and a warm run over a populated store must print a
# bit-identical canonical report at least 2x faster than the cold run.
KV_CHECK_DIR := _build/ccal-kv-cache-check

check-kv: build
	@rm -rf $(KV_CHECK_DIR); \
	t0=$$(date +%s%N); \
	$(CCAL_BIN) kv --threads 4 --cache-dir $(KV_CHECK_DIR) --report _build/kv-cold.txt || exit 1; \
	t1=$$(date +%s%N); \
	$(CCAL_BIN) kv --threads 4 --cache-dir $(KV_CHECK_DIR) --report _build/kv-warm.txt || exit 1; \
	t2=$$(date +%s%N); \
	cmp _build/kv-cold.txt _build/kv-warm.txt || { \
	  echo "check-kv: REGRESSION - warm report differs from cold"; exit 1; }; \
	cold=$$(( (t1 - t0) / 1000000 )); warm=$$(( (t2 - t1) / 1000000 )); \
	echo "check-kv: cold $${cold}ms, warm $${warm}ms"; \
	if [ $$(( warm * 2 )) -gt $$cold ]; then \
	  echo "check-kv: REGRESSION - warm run not >= 2x faster"; exit 1; fi; \
	echo "check-kv: OK (3 edges certified, reports identical, >= 2x speedup)"

# The robustness gate (DESIGN.md S27).  Two legs:
#   1. the adversarial rwlock spin suite livelocks under the trace-prefix
#      schedulers; a 2s wall-clock budget must turn that into a clean
#      exit 0 with an Exhausted report naming the unfinished edge;
#   2. injected faults (worker crashes, clock skew, corrupted cache
#      entries) must be absorbed by the requeue/skip machinery: the
#      canonical report of a faulted pool run is byte-identical to the
#      fault-free one.
check-robust: build
	@out=$$($(CCAL_BIN) stack --livelock --budget-ms 2000); status=$$?; \
	if [ $$status -ne 0 ]; then \
	  echo "check-robust: REGRESSION - budgeted livelock run exited $$status"; exit 1; fi; \
	echo "$$out" | grep -q "budget exhausted" || { \
	  echo "check-robust: REGRESSION - no Exhausted report from the livelock run"; exit 1; }; \
	echo "check-robust: OK (livelock bounded: $$(echo "$$out" | grep 'budget exhausted'))"
	@$(CCAL_BIN) stack --report _build/robust-clean.txt > /dev/null || exit 1; \
	$(CCAL_BIN) stack --jobs 4 --inject crash:0.25,corrupt-cache:0.05,skew:0.2,seed:7 \
	  --report _build/robust-faulted.txt > /dev/null || exit 1; \
	cmp _build/robust-clean.txt _build/robust-faulted.txt || { \
	  echo "check-robust: REGRESSION - faulted report differs from fault-free"; exit 1; }; \
	echo "check-robust: OK (faulted report byte-identical to fault-free)"

# The memory-model gate (DESIGN.md S29).  Three legs:
#   1. the litmus conformance suite: every reachable-outcome set must
#      equal the hand-derived x86-TSO table under both memory modes
#      (exit 1 on any extra or missing outcome);
#   2. the whole stack re-certifies under --memory tso (store buffers,
#      flusher moves, drain environments) for both lock implementations;
#   3. the dual-mode bench regenerates BENCH_tso.json.
check-tso: build
	$(CCAL_BIN) litmus all --table _build/litmus-table.txt
	$(CCAL_BIN) stack --memory tso
	$(CCAL_BIN) stack --memory tso --lock mcs
	_build/default/bench/main.exe --tso-only

# The crash-safety gate (DESIGN.md S30).  Three legs:
#   1. the WAL and durable-kv edges certify crash refinement: every
#      schedule x crash point x (keep,tear) mask recovers to a
#      prefix-consistent state (exit 1 on any lost acked-synced op or
#      invented op);
#   2. the deliberately unsynced WAL variant must FAIL, with the failure
#      naming a stable crash point (the negative control: if the
#      certifier ever waves it through, the gate is vacuous);
#   3. warm cache and jobs {1,4} runs print bit-identical canonical
#      reports.
CRASH_CHECK_DIR := _build/ccal-crash-cache-check

check-crash: build
	@rm -rf $(CRASH_CHECK_DIR); \
	$(CCAL_BIN) crash --cache-dir $(CRASH_CHECK_DIR) --jobs 1 \
	  --report _build/crash-cold.txt || exit 1; \
	$(CCAL_BIN) crash --cache-dir $(CRASH_CHECK_DIR) --jobs 4 \
	  --report _build/crash-warm.txt || exit 1; \
	cmp _build/crash-cold.txt _build/crash-warm.txt || { \
	  echo "check-crash: REGRESSION - warm jobs=4 report differs from cold jobs=1"; exit 1; }; \
	echo "check-crash: OK (2 edges certified, cold/warm and jobs 1/4 reports identical)"
	@out=$$($(CCAL_BIN) crash unsynced 2>&1); status=$$?; \
	if [ $$status -eq 0 ]; then \
	  echo "check-crash: REGRESSION - unsynced WAL variant certified"; exit 1; fi; \
	echo "$$out" | grep -q "crash-refinement failure" || { \
	  echo "check-crash: REGRESSION - unsynced failure not named"; exit 1; }; \
	echo "check-crash: OK (unsynced variant rejected: $$(echo "$$out" | grep 'crash-refinement failure' | head -1))"

# The optimal-engine gate (DESIGN.md S31).  Three legs:
#   1. depth-8 scaling: on the ticket game (4 threads, depth 8, events
#      independence) the sleep-set engine must exhaust a 150k-step budget
#      while optimal:8,dedup,sym completes inside it — and the same
#      separation on the symmetric kv game at a 1.5k-step budget;
#   2. engine identity: the whole stack certifies with a byte-identical
#      canonical report under --strategy dpor:4 and --strategy optimal:4;
#   3. invariance: the kv-sym verdict lines are byte-identical across
#      CCAL_JOBS {1,4} and cache cold/warm (only the cache-stats trailer
#      may differ).
OPT_CHECK_DIR := _build/ccal-optimal-cache-check

check-optimal: build
	@out=$$($(CCAL_BIN) explore ticket --threads 4 --depth 8 --mode events \
	  --strategy dpor:8 --budget-steps 150000 --no-oracle); \
	echo "$$out" | grep -q "budget exhausted" || { \
	  echo "check-optimal: REGRESSION - dpor:8 finished ticket 4t depth 8 inside 150k steps (gate vacuous)"; exit 1; }; \
	out=$$($(CCAL_BIN) explore ticket --threads 4 --depth 8 --mode events \
	  --strategy optimal:8,dedup,sym --budget-steps 150000 --no-oracle) || exit 1; \
	echo "$$out" | grep -q "complete" || { \
	  echo "check-optimal: REGRESSION - optimal:8,dedup,sym exhausted the ticket 150k-step budget"; exit 1; }; \
	echo "check-optimal: OK (ticket 4t depth 8:$$(echo "$$out" | grep 'schedules:'))"
	@out=$$($(CCAL_BIN) explore kv-sym --threads 4 --depth 8 --mode events \
	  --strategy dpor:8 --budget-steps 1500 --no-oracle); \
	echo "$$out" | grep -q "budget exhausted" || { \
	  echo "check-optimal: REGRESSION - dpor:8 finished kv-sym 4t depth 8 inside 1.5k steps (gate vacuous)"; exit 1; }; \
	out=$$($(CCAL_BIN) explore kv-sym --threads 4 --depth 8 --mode events \
	  --strategy optimal:8,dedup,sym --budget-steps 1500 --no-oracle) || exit 1; \
	echo "$$out" | grep -q "complete" || { \
	  echo "check-optimal: REGRESSION - optimal:8,dedup,sym exhausted the kv-sym 1.5k-step budget"; exit 1; }; \
	echo "check-optimal: OK (kv-sym 4t depth 8:$$(echo "$$out" | grep 'schedules:'))"
	@$(CCAL_BIN) stack --strategy dpor:4 --report _build/opt-dpor.txt > /dev/null || exit 1; \
	$(CCAL_BIN) stack --strategy optimal:4 --report _build/opt-optimal.txt > /dev/null || exit 1; \
	cmp _build/opt-dpor.txt _build/opt-optimal.txt || { \
	  echo "check-optimal: REGRESSION - stack verdicts differ between dpor:4 and optimal:4"; exit 1; }; \
	echo "check-optimal: OK (stack report byte-identical under dpor:4 and optimal:4)"
	@rm -rf $(OPT_CHECK_DIR); \
	CCAL_JOBS=1 $(CCAL_BIN) explore kv-sym --threads 4 --depth 8 --mode events \
	  --strategy optimal:8,dedup,sym --budget-steps 1500 --no-oracle \
	  --cache-dir $(OPT_CHECK_DIR) > _build/opt-j1-cold.txt || exit 1; \
	CCAL_JOBS=4 $(CCAL_BIN) explore kv-sym --threads 4 --depth 8 --mode events \
	  --strategy optimal:8,dedup,sym --budget-steps 1500 --no-oracle \
	  --cache-dir $(OPT_CHECK_DIR) > _build/opt-j4-warm.txt || exit 1; \
	grep -v '^cache:' _build/opt-j1-cold.txt > _build/opt-j1-cold.cmp; \
	grep -v '^cache:' _build/opt-j4-warm.txt > _build/opt-j4-warm.cmp; \
	cmp _build/opt-j1-cold.cmp _build/opt-j4-warm.cmp || { \
	  echo "check-optimal: REGRESSION - kv-sym verdict differs across jobs 1/4 or cache cold/warm"; exit 1; }; \
	grep -q '1 hits' _build/opt-j4-warm.txt || { \
	  echo "check-optimal: REGRESSION - warm run missed the engine suite cache"; exit 1; }; \
	echo "check-optimal: OK (kv-sym verdict identical across jobs 1/4, cache cold/warm; warm run hit the cache)"

# Build and run every example as a smoke test (the CI examples step).
examples: build
	dune exec examples/quickstart.exe
	dune exec examples/ticket_vs_mcs.exe
	dune exec examples/producer_consumer.exe
	dune exec examples/kernel_sim.exe

# The parallel-checking gate (DESIGN.md S24): the same verdicts must come
# out of the sequential oracle and the 4-domain pool.  CI runs `check`
# under both via the CCAL_JOBS matrix; this is the local one-shot.
check-parallel:
	CCAL_JOBS=1 dune exec bin/ccal_cli.exe -- explore lock --threads 3 --depth 5
	CCAL_JOBS=4 dune exec bin/ccal_cli.exe -- explore lock --threads 3 --depth 5
	dune exec bin/ccal_cli.exe -- stack --strategy dpor:4 --jobs 4

explore:
	dune exec bin/ccal_cli.exe -- explore lock --threads 3 --depth 5
	dune exec bin/ccal_cli.exe -- explore queue --threads 2 --depth 4
	dune exec bin/ccal_cli.exe -- explore queue-atomic --threads 3 --depth 4 --mode events

bench:
	dune exec bench/main.exe

clean:
	dune clean
