.PHONY: all build test check explore bench clean

all: build

build:
	dune build

test:
	dune runtest --force

# The tier-1 gate: everything CI runs, runnable locally in one shot.
# Includes the DPOR-vs-exhaustive agreement check on the headline game.
check: build test
	dune exec bin/ccal_cli.exe -- explore lock --threads 3 --depth 5

explore:
	dune exec bin/ccal_cli.exe -- explore lock --threads 3 --depth 5
	dune exec bin/ccal_cli.exe -- explore queue --threads 2 --depth 4
	dune exec bin/ccal_cli.exe -- explore queue-atomic --threads 3 --depth 4 --mode events

bench:
	dune exec bench/main.exe

clean:
	dune clean
