.PHONY: all build test check check-parallel explore bench clean

all: build

build:
	dune build

test:
	dune runtest --force

# The tier-1 gate: everything CI runs, runnable locally in one shot.
# Includes the DPOR-vs-exhaustive agreement check on the headline game.
check: build test
	dune exec bin/ccal_cli.exe -- explore lock --threads 3 --depth 5

# The parallel-checking gate (DESIGN.md S24): the same verdicts must come
# out of the sequential oracle and the 4-domain pool.  CI runs `check`
# under both via the CCAL_JOBS matrix; this is the local one-shot.
check-parallel:
	CCAL_JOBS=1 dune exec bin/ccal_cli.exe -- explore lock --threads 3 --depth 5
	CCAL_JOBS=4 dune exec bin/ccal_cli.exe -- explore lock --threads 3 --depth 5
	dune exec bin/ccal_cli.exe -- stack --strategy dpor:4 --jobs 4

explore:
	dune exec bin/ccal_cli.exe -- explore lock --threads 3 --depth 5
	dune exec bin/ccal_cli.exe -- explore queue --threads 2 --depth 4
	dune exec bin/ccal_cli.exe -- explore queue-atomic --threads 3 --depth 4 --mode events

bench:
	dune exec bench/main.exe

clean:
	dune clean
