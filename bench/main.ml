(* Benchmark harness: regenerates every table and figure of the paper's
   evaluation (Sec. 6), as indexed in DESIGN.md and recorded in
   EXPERIMENTS.md.

   - tab1: Table 1 (lines of proof per toolkit component) — our analogue
     counts the OCaml lines of the corresponding components and times the
     toolkit self-check (the certification work the proofs stand for).
   - tab2: Table 2 (per-object statistics) — source/spec sizes and
     verification effort per implemented object, with a Bechamel timing of
     each object's certification.
   - perf_lock: the performance evaluation — ticket-lock latency with
     ghost "logical primitive" calls left in vs. erased (the paper's
     87 -> 35 cycles story), plus a contention sweep (the natural figure
     behind the single-core number).
   - fig1_stack / fig5_pipeline: end-to-end stack verification and the
     Fig. 5 pipeline as macro-benchmarks.

   Run with:  dune exec bench/main.exe *)

open Bechamel
open Toolkit
open Ccal_core
open Ccal_objects
module C = Ccal_clight.Csyntax

let vi = Value.int

(* ------------------------------------------------------------------ *)
(* helpers                                                             *)
(* ------------------------------------------------------------------ *)

let count_lines path =
  try
    let ic = open_in path in
    let n = ref 0 in
    (try
       while true do
         ignore (input_line ic);
         incr n
       done
     with End_of_file -> ());
    close_in ic;
    !n
  with Sys_error _ -> 0

let starts_with p f =
  String.length f >= String.length p && String.sub f 0 (String.length p) = p

let dir_lines dir prefixes =
  try
    Sys.readdir dir |> Array.to_list
    |> List.filter (fun f ->
           (Filename.check_suffix f ".ml" || Filename.check_suffix f ".mli")
           && (prefixes = [] || List.exists (fun p -> starts_with p f) prefixes))
    |> List.map (fun f -> count_lines (Filename.concat dir f))
    |> List.fold_left ( + ) 0
  with Sys_error _ -> 0

let timed f =
  let t0 = Unix.gettimeofday () in
  let r = f () in
  r, (Unix.gettimeofday () -. t0) *. 1000.

(* Ctx shims: the bench drives everything through the [*_ctx] checker
   entry points (the pre-Ctx signatures are deprecated) with an unlimited
   budget, so [Budget.value] never loses a partial result. *)
let vctx ?jobs ?cache () = Ccal_verify.Ctx.make ?jobs ?cache ()

let run_all_scheds ?jobs layer threads scheds =
  Ccal_verify.Budget.value
    (Ccal_verify.Explore.run_all_ctx ~ctx:(vctx ?jobs ()) layer threads scheds)

let dpor_explore ?jobs ~depth layer threads =
  Ccal_verify.Budget.value
    (Ccal_verify.Dpor.explore_ctx ~ctx:(vctx ?jobs ()) ~depth layer threads)

let stack_verify ?cache ~seeds () =
  Result.map
    (fun (p : Ccal_verify.Stack.progress) -> p.Ccal_verify.Stack.completed)
    (Ccal_verify.Budget.value
       (Ccal_verify.Stack.verify_all_ctx ~ctx:(vctx ?cache ()) ~seeds ()))

(* ------------------------------------------------------------------ *)
(* tab1 — Table 1: toolkit components                                   *)
(* ------------------------------------------------------------------ *)

let tab1_rows () =
  [
    "Auxiliary library", 6_200,
      dir_lines "lib/core" [ "value"; "event"; "log"; "replay"; "abs"; "rely" ];
    "C verifier", 2_200, dir_lines "lib/clight" [];
    "Asm verifier", 800, dir_lines "lib/machine" [ "asm" ];
    "Simulation library", 1_800,
      dir_lines "lib/core" [ "strategy"; "simulation"; "sim_rel" ];
    "Multilayer linking", 17_000,
      dir_lines "lib/core"
        [ "layer"; "calculus"; "refinement"; "machine"; "game"; "sched"; "env"; "prog" ];
    "Multithread linking", 10_000, dir_lines "lib/objects" [ "thread_sched"; "qlock" ];
    "Multicore linking", 7_000, dir_lines "lib/machine" [ "mx86"; "pushpull"; "atomic" ];
    "Thread-safe CompCertX", 7_500, dir_lines "lib/compcertx" [];
  ]

let print_tab1 () =
  Format.printf
    "@.== tab1: Table 1 — toolkit components (paper: Coq proof lines; ours: OCaml lines) ==@.@.";
  Format.printf "  %-24s %12s %12s@." "Component" "paper (Coq)" "ours (OCaml)";
  List.iter
    (fun (name, paper, ours) ->
      Format.printf "  %-24s %12d %12s@." name paper
        (if ours = 0 then "n/a" else string_of_int ours))
    (tab1_rows ());
  let total = List.fold_left (fun a (_, _, o) -> a + o) 0 (tab1_rows ()) in
  Format.printf "  %-24s %12d %12d@." "total" 52_500 total;
  Format.printf
    "@.  shape check: the two heaviest components are the linking libraries in both@."

(* ------------------------------------------------------------------ *)
(* tab2 — Table 2: per-object statistics                                *)
(* ------------------------------------------------------------------ *)

type tab2_row = {
  obj : string;
  paper_src : int;  (** paper's "C & Asm source" column *)
  src : int;  (** our C statement count + compiled instructions *)
  spec : int;  (** overlay primitives + replay/relation definitions (fns) *)
  checks : int;  (** Fun-rule obligations discharged *)
  ms : float;
}

let asm_size fns =
  List.fold_left
    (fun n f -> n + Ccal_machine.Asm.size (Ccal_compcertx.Compile.compile_fn f))
    0 fns

let c_size fns = List.fold_left (fun n f -> n + C.fn_size f) 0 fns

let tab2_row obj paper_src fns spec certify =
  let result, ms = timed certify in
  let checks =
    match result with
    | Ok cert -> Calculus.count_checks cert
    | Error _ -> -1
  in
  { obj; paper_src; src = c_size fns + asm_size fns; spec; checks; ms }

let tab2_rows () =
  [
    tab2_row "Ticket lock" 74 [ Ticket_lock.acq_fn; Ticket_lock.rel_fn ] 5
      (fun () -> Ticket_lock.certify ~focus:[ 1; 2 ] ());
    tab2_row "MCS lock" 287 [ Mcs_lock.acq_fn; Mcs_lock.rel_fn ] 5
      (fun () -> Mcs_lock.certify ~focus:[ 1; 2 ] ());
    tab2_row "Local queue" 377
      [ Queue_local.enq_fn; Queue_local.deq_fn; Queue_local.qlen_fn ] 3
      (fun () -> Queue_local.certify ());
    tab2_row "Shared queue" 20 [ Queue_shared.deq_fn; Queue_shared.enq_fn ] 4
      (fun () -> Queue_shared.certify ());
    tab2_row "Scheduler" 62 [] 6
      (fun () ->
        (* the scheduler is a layer transformer; its verification is the
           multithreaded linking check *)
        let placement = [ 1, 0; 2, 0; 3, 1 ] in
        let layer = Thread_sched.mt_layer placement (Lock_intf.layer "Llock") in
        let prog i =
          Prog.seq_all
            [ Prog.call "acq" [ vi 0 ]; Prog.call "rel" [ vi 0; vi i ];
              Prog.call "yield" []; Prog.call "texit" [] ]
        in
        match
          Thread_sched.check_multithreaded_linking ~placement ~layer
            ~threads:[ 1, prog 1; 2, prog 2; 3, prog 3 ]
            ~scheds:(Sched.default_suite ~seeds:4) ()
        with
        | Ok n -> Ok (Calculus.empty_rule layer (List.init n (fun i -> i)))
        | Error msg -> Error msg);
    tab2_row "Queuing lock" 112 [ Qlock.acq_q_fn; Qlock.rel_q_fn ] 4
      (fun () ->
        Result.map_error (Format.asprintf "%a" Calculus.pp_error) (Qlock.certify ()));
    tab2_row "RW lock (ext)" 0
      [ Rwlock.acq_r_fn; Rwlock.rel_r_fn; Rwlock.acq_w_fn; Rwlock.rel_w_fn ] 4
      (fun () -> Rwlock.certify ());
  ]

let print_tab2 rows =
  Format.printf "@.== tab2: Table 2 — implemented components ==@.@.";
  Format.printf "  %-14s %10s %10s %6s %8s %9s@." "Object" "paper src" "our src"
    "spec" "checks" "verify ms";
  List.iter
    (fun r ->
      Format.printf "  %-14s %10d %10d %6d %8d %9.1f@." r.obj r.paper_src r.src
        r.spec r.checks r.ms)
    rows;
  Format.printf
    "@.  shape check: MCS is the largest lock source in both; wrapping the queue@.  with a verified lock is cheap in both (paper: 20 loc; ours: smallest source)@."

(* ------------------------------------------------------------------ *)
(* perf_lock — Sec. 6 performance evaluation                            *)
(* ------------------------------------------------------------------ *)

(* The paper: the first measurement of the ticket lock showed 87 cycles
   because calls to "logical primitives" manipulating ghost abstract state
   had not been removed; erasing them dropped the latency to 35 cycles.
   We reproduce both variants: [acq]/[rel] with ghost bookkeeping calls
   left in, and the clean implementation. *)

let ghost_prim =
  ("ghost_log", Layer.Private (fun _ _ abs -> Ok (abs, Value.unit)))

let l0_with_ghost () =
  let base = Ticket_lock.l0 () in
  Layer.make ~rely:base.Layer.rely ~guar:base.Layer.guar "L0_ghost"
    (base.Layer.prims @ [ ghost_prim ])

let ghost_call = C.call_ "ghost_log" []

let acq_ghost_fn =
  {
    C.name = "acq";
    params = [ "b" ];
    locals = [ "myt"; "n"; "v" ];
    body =
      C.seq
        [
          ghost_call;
          C.calla "myt" "FAI_t" [ C.v "b" ];
          ghost_call;
          C.calla "n" "get_n" [ C.v "b" ];
          C.while_ C.(v "n" <> v "myt")
            (C.seq [ ghost_call; C.calla "n" "get_n" [ C.v "b" ] ]);
          ghost_call;
          C.calla "v" "pull" [ C.v "b" ];
          ghost_call;
          C.return (C.v "v");
        ];
  }

let rel_ghost_fn =
  {
    C.name = "rel";
    params = [ "b"; "v" ];
    locals = [];
    body =
      C.seq
        [
          ghost_call;
          C.call_ "push" [ C.v "b"; C.v "v" ];
          ghost_call;
          C.call_ "inc_n" [ C.v "b" ];
          ghost_call;
          C.return_unit;
        ];
  }

let lock_round layer m =
  let prog =
    Prog.Module.link m
      (Prog.bind (Prog.call "acq" [ vi 0 ]) (fun v ->
           Prog.call "rel" [ vi 0; v ]))
  in
  Machine.run_local layer 1 ~env:Env_context.empty prog

let print_perf_lock () =
  Format.printf "@.== perf_lock: single-core lock latency, ghost primitives vs erased ==@.@.";
  let ghost_layer = l0_with_ghost () in
  let ghost_m = Ccal_clight.Csem.module_of_fns [ acq_ghost_fn; rel_ghost_fn ] in
  let clean_layer = Ticket_lock.l0 () in
  let clean_m = Ticket_lock.c_module () in
  let ghost_run = lock_round ghost_layer ghost_m in
  let clean_run = lock_round clean_layer clean_m in
  let steps r = r.Machine.silent_steps + (2 * r.Machine.moves) in
  Format.printf "  paper:  87 cycles with logical primitives, 35 after removing them (2.5x)@.";
  Format.printf "  ours:   %d interpreter steps with ghost calls, %d after removing them (%.1fx)@."
    (steps ghost_run) (steps clean_run)
    (float_of_int (steps ghost_run) /. float_of_int (steps clean_run));
  Format.printf "  (wall-clock per acq+rel round measured below by Bechamel)@.";
  ghost_layer, ghost_m, clean_layer, clean_m

(* the contention sweep: average hardware events per lock round *)
let print_contention_sweep () =
  Format.printf "@.== perf_lock figure: contention sweep (events per acq/rel round) ==@.@.";
  Format.printf "  %-6s %-14s %-14s@." "cores" "ticket ev/op" "mcs ev/op";
  let rounds = 3 in
  let events_per_op layer m n =
    let client i =
      let rec go k =
        if k = 0 then Prog.ret (vi i)
        else
          Prog.bind (Prog.call "acq" [ vi 0 ]) (fun v ->
              Prog.seq (Prog.call "rel" [ vi 0; v ]) (go (k - 1)))
      in
      Prog.Module.link m (go rounds)
    in
    let threads = List.init n (fun k -> k + 1, client (k + 1)) in
    let o =
      Game.run (Game.config ~max_steps:2_000_000 layer threads (Sched.random ~seed:99))
    in
    match o.Game.status with
    | Game.All_done ->
      float_of_int (Log.length o.Game.log) /. float_of_int (n * rounds)
    | _ -> nan
  in
  List.iter
    (fun n ->
      Format.printf "  %-6d %-14.1f %-14.1f@." n
        (events_per_op (Ticket_lock.l0 ()) (Ticket_lock.c_module ()) n)
        (events_per_op (Mcs_lock.l0 ()) (Mcs_lock.c_module ()) n))
    [ 1; 2; 3; 4; 6; 8 ];
  Format.printf
    "@.  shape check: both grow with contention (spinning); 1-core cost is flat@."

(* ------------------------------------------------------------------ *)
(* Ablations: the design choices DESIGN.md calls out                    *)
(* ------------------------------------------------------------------ *)

(* Ablation 1 — replay functions.  "This seemingly 'inefficient' way of
   treating shared atomic objects is actually great for compositional
   specification" (Sec. 7): every primitive replays the whole log, so a
   call costs O(|log|).  We measure the cost growth directly. *)
let print_replay_ablation () =
  Format.printf "@.== ablation: replay-function cost vs. log length (Sec. 7 design choice) ==@.@.";
  Format.printf "  %-10s %-16s@." "log events" "ns per replay";
  let log_of_n n =
    let rec go l k =
      if k = 0 then l
      else
        go (Log.append (Event.make ~args:[ vi 0 ] (1 + (k mod 4)) "FAI_t") l) (k - 1)
    in
    go Log.empty n
  in
  List.iter
    (fun n ->
      let log = log_of_n n in
      let t0 = Unix.gettimeofday () in
      let iters = 2_000 in
      for _ = 1 to iters do
        ignore (Ticket_lock.replay_ticket 0 log)
      done;
      let ns = (Unix.gettimeofday () -. t0) *. 1e9 /. float_of_int iters in
      Format.printf "  %-10d %-16.0f@." n ns)
    [ 10; 50; 100; 500; 1000 ];
  Format.printf
    "  shape: linear in the log — the price paid for log-only shared state@."

(* Ablation 2 — exploration strategy.  How many distinct interleavings do
   exhaustive prefixes vs. random schedules observe for the same budget? *)
let print_exploration_ablation () =
  Format.printf "@.== ablation: exhaustive prefixes vs. random schedules (coverage) ==@.@.";
  let layer = Ticket_lock.l0 () in
  let m = Ticket_lock.c_module () in
  let client _i =
    Prog.Module.link m
      (Prog.bind (Prog.call "acq" [ vi 0 ]) (fun v ->
           Prog.call "rel" [ vi 0; v ]))
  in
  let threads = [ 1, client 1; 2, client 2 ] in
  let distinct scheds =
    Ccal_verify.Explore.count_distinct_logs
      (run_all_scheds layer threads scheds)
  in
  let budgets = [ 8; 16; 32; 64 ] in
  Format.printf "  %-8s %-22s %-22s@." "budget" "exhaustive (depth log2)" "random seeds";
  List.iter
    (fun b ->
      let depth = int_of_float (Float.round (log (float_of_int b) /. log 2.)) in
      let ex = Ccal_verify.Explore.exhaustive_scheds ~tids:[ 1; 2 ] ~depth in
      let rnd = Ccal_verify.Explore.random_scheds ~count:b in
      Format.printf "  %-8d %-22d %-22d@." b (distinct ex) (distinct rnd))
    budgets;
  Format.printf
    "  shape: exhaustive prefixes dominate early decisions; random catches the tail@."

let print_dpor_ablation () =
  Format.printf
    "@.== explore: DPOR vs. exhaustive at equal depth (schedules run) ==@.@.";
  let lock_client i =
    Prog.bind (Prog.call "acq" [ vi 0 ]) (fun _ ->
        Prog.seq (Prog.call "rel" [ vi 0; vi i ]) (Prog.ret (vi i)))
  in
  let queue_client i =
    Prog.bind (Prog.call "enQ_s" [ vi 0; vi (10 * i) ]) (fun _ ->
        Prog.call "deQ_s" [ vi 0 ])
  in
  let qm =
    Ccal_clight.Csem.module_of_fns [ Queue_shared.deq_fn; Queue_shared.enq_fn ]
  in
  let games =
    [ "Llock atomic 3t", Lock_intf.layer "Llock",
      List.init 3 (fun k -> k + 1, lock_client (k + 1)), 5;
      "queue underlay 2t", Queue_shared.underlay (),
      List.init 2 (fun k -> k + 1, Prog.Module.link qm (queue_client (k + 1))), 4;
      "queue underlay 3t", Queue_shared.underlay (),
      List.init 3 (fun k -> k + 1, Prog.Module.link qm (queue_client (k + 1))), 3;
      "queue overlay 3t", Queue_shared.overlay (),
      List.init 3 (fun k -> k + 1, queue_client (k + 1)), 5 ]
  in
  Format.printf "  %-20s %-7s %-12s %-12s %-9s %s@." "game" "depth" "dpor-run"
    "exhaustive" "distinct" "agree";
  List.iter
    (fun (name, layer, threads, depth) ->
      let r = dpor_explore ~depth layer threads in
      let tids = List.map fst threads in
      let ex =
        run_all_scheds layer threads
          (Ccal_verify.Explore.exhaustive_scheds ~tids ~depth)
      in
      let exh_distinct = Ccal_verify.Explore.count_distinct_logs ex in
      let s = r.Ccal_verify.Dpor.stats in
      Format.printf "  %-20s %-7d %-12d %-12d %d=%-7d %b@." name depth
        s.Ccal_verify.Dpor.schedules_run (List.length ex)
        s.Ccal_verify.Dpor.distinct_logs exh_distinct
        (s.Ccal_verify.Dpor.distinct_logs = exh_distinct))
    games;
  Format.printf
    "  shape: branching only at enabled choices plus sleep sets prunes the \
     blocked and commuting interleavings@."

(* ------------------------------------------------------------------ *)
(* parallel — multicore certificate checking (domain-pool scaling)      *)
(* ------------------------------------------------------------------ *)

(* Sweep the race checker over a fixed exhaustive schedule suite across
   the jobs grid.  Parallelism must change wall-clock only: the verdict
   at every jobs count is compared structurally against the sequential
   one.  Schedule suites are stateful ([Sched.of_trace] consumes a trace
   ref), so each run regenerates its own suite.  Pass [--jobs N] to sweep
   {1, N} instead of the default {1, 2, 4, 7} (the determinism grid the
   tests pin).

   Steady-state hygiene: each jobs count gets a warm-up run over a
   truncated suite first (pool domains spawned, code paths warmed), and
   the minor heap is sized for replay workloads — with the default 256k
   minor heap, domains rendezvous for a stop-the-world minor collection
   every couple of thousand schedules, which is pure overhead on every
   host and catastrophic on oversubscribed ones.  [--min-schedules N]
   skips games whose suite is smaller than [N] (too noisy to report). *)

let int_flag name default =
  let rec find = function
    | f :: v :: _ when String.equal f name -> int_of_string_opt v
    | _ :: rest -> find rest
    | [] -> None
  in
  match find (Array.to_list Sys.argv) with Some n -> Some n | None -> default

let jobs_sweep =
  match int_flag "--jobs" None with
  | Some n when n >= 1 -> List.sort_uniq compare [ 1; n ]
  | _ -> [ 1; 2; 4; 7 ]

let min_schedules =
  match int_flag "--min-schedules" (Some 0) with Some n -> max 0 n | None -> 0

(* words; ~8 MB per domain.  Applied once, at the start of the parallel
   section. *)
let parallel_minor_heap = 1_048_576

let parallel_warmup_schedules = 512

type parallel_run = {
  jobs : int;
  ms : float;
  scheds_per_sec : float;
  speedup : float;
}

type parallel_game = {
  game : string;
  depth : int;
  schedules : int;
  runs : (parallel_run * Ccal_verify.Races.verdict) list;
  verdicts_agree : bool;
}

let verdict_name = function
  | Ccal_verify.Races.Race_free { runs } -> Printf.sprintf "race-free(%d)" runs
  | Ccal_verify.Races.Race { sched_name; _ } -> "race@" ^ sched_name
  | Ccal_verify.Races.Other_failure msg -> "other: " ^ msg
  | Ccal_verify.Races.Exhausted { partial; _ } ->
    (* scanned/clean are the jobs-deterministic part; spent.elapsed_ms is
       wall clock and deliberately excluded *)
    Printf.sprintf "exhausted(%d scanned, %d clean)"
      partial.Ccal_verify.Races.scanned partial.Ccal_verify.Races.clean

let parallel_scaling_games () =
  let lock_client i =
    Prog.bind (Prog.call "acq" [ vi 0 ]) (fun _ ->
        Prog.seq (Prog.call "rel" [ vi 0; vi i ]) (Prog.ret (vi i)))
  in
  let queue_client i =
    Prog.bind (Prog.call "enQ_s" [ vi 0; vi (10 * i) ]) (fun _ ->
        Prog.call "deQ_s" [ vi 0 ])
  in
  let mcs_m = Mcs_lock.c_module () in
  let qm =
    Ccal_clight.Csem.module_of_fns [ Queue_shared.deq_fn; Queue_shared.enq_fn ]
  in
  [
    (* the ≥10⁵-schedule headline: 5 threads contending an abstract lock,
       depth 8 — 5⁸ = 390,625 exhaustive schedules with a cheap (non-C)
       per-schedule body, the regime where work distribution, not the
       interpreter, decides the curve *)
    "llock-5t", Lock_intf.layer "Llock",
    List.init 5 (fun k -> k + 1, lock_client (k + 1)), 8;
    "mcs-lock-3t", Mcs_lock.l0 (),
    List.init 3 (fun k -> k + 1, Prog.Module.link mcs_m (lock_client (k + 1))), 6;
    "shared-queue-3t", Queue_shared.underlay (),
    List.init 3 (fun k -> k + 1, Prog.Module.link qm (queue_client (k + 1))), 5;
  ]

let run_parallel_scaling () =
  Gc.set { (Gc.get ()) with Gc.minor_heap_size = parallel_minor_heap };
  Format.printf
    "@.== parallel: domain-pool scaling of the race checker (schedules/sec) ==@.@.";
  Format.printf
    "  host: %d recommended domains; sweep: {%s}; minor heap: %d words; \
     warm-up: %d schedules@.@."
    (Domain.recommended_domain_count ())
    (String.concat ", " (List.map string_of_int jobs_sweep))
    parallel_minor_heap parallel_warmup_schedules;
  Format.printf "  %-18s %-6s %-10s %-6s %-10s %-12s %-9s@." "game" "depth"
    "schedules" "jobs" "ms" "scheds/sec" "speedup";
  List.filter_map
    (fun (name, layer, threads, depth) ->
      let tids = List.map fst threads in
      let count =
        List.length (Ccal_verify.Explore.exhaustive_scheds ~tids ~depth)
      in
      if count < min_schedules then begin
        Format.printf "  %-18s skipped (%d < --min-schedules %d)@." name count
          min_schedules;
        None
      end
      else begin
        let runs =
          List.map
            (fun jobs ->
              (* steady state: spawn the pool domains and warm the code
                 paths on a truncated suite before the timed run *)
              let warm =
                List.filteri
                  (fun i _ -> i < parallel_warmup_schedules)
                  (Ccal_verify.Explore.exhaustive_scheds ~tids ~depth)
              in
              ignore
                (Ccal_verify.Races.check_ctx ~ctx:(vctx ~jobs ())
                   ~max_steps:200_000 ~scheds:warm layer threads);
              (* fresh suite per run: trace schedulers are single-use *)
              let scheds =
                Ccal_verify.Explore.exhaustive_scheds ~tids ~depth
              in
              let verdict, ms =
                Ccal_verify.Verify_clock.timed (fun () ->
                    Ccal_verify.Races.check_ctx ~ctx:(vctx ~jobs ())
                      ~max_steps:200_000 ~scheds layer threads)
              in
              let scheds_per_sec = float_of_int count /. (ms /. 1000.) in
              ({ jobs; ms; scheds_per_sec; speedup = 1.0 }, verdict))
            jobs_sweep
        in
        let base_ms =
          match runs with ({ ms; _ }, _) :: _ -> ms | [] -> nan
        in
        let runs =
          List.map
            (fun (r, v) -> { r with speedup = base_ms /. r.ms }, v)
            runs
        in
        let verdicts_agree =
          match runs with
          | [] -> true
          | (_, v0) :: rest -> List.for_all (fun (_, v) -> v = v0) rest
        in
        List.iter
          (fun (r, v) ->
            Format.printf "  %-18s %-6d %-10d %-6d %-10.1f %-12.0f %-9.2f %s@."
              name depth count r.jobs r.ms r.scheds_per_sec r.speedup
              (verdict_name v))
          runs;
        Format.printf "  %-18s verdicts %s across jobs@." name
          (if verdicts_agree then "agree" else "DISAGREE");
        Some { game = name; depth; schedules = count; runs; verdicts_agree }
      end)
    (parallel_scaling_games ())

(* ------------------------------------------------------------------ *)
(* per-engine throughput — the S31 engine registry                      *)
(* ------------------------------------------------------------------ *)

(* One game, every registered depth-bounded engine: the ticket lock at
   4 threads, depth 8, events independence — the scaling point of the
   `make check-optimal` gate.  Sleep-set DPOR replays every surviving
   prefix; the optimal engine's dedup adds fingerprint overhead for no
   extra pruning on this corpus (every move emits a src-tagged event, so
   walk states uniquely encode their trace class), and symmetry reduction
   collapses the frontier to the orbit representatives. *)

type engine_run = {
  engine : string;
  eng_ms : float;
  eng_runs : int;
  eng_distinct : int;
  eng_sleep : int;
  eng_dedup : int;
  eng_sym : int;
  eng_per_sec : float;
}

let run_engine_bench () =
  let module E = Ccal_verify.Ctx.Engine in
  let depth = 8 in
  Format.printf
    "@.== engines: per-engine throughput on the ticket game (4 threads, \
     depth %d, events independence) ==@.@."
    depth;
  Format.printf "  %-22s %-10s %-9s %-10s %-8s %-7s %-7s %-12s@." "engine"
    "ms" "runs" "distinct" "sleep" "dedup" "sym" "runs/sec";
  let m = Ticket_lock.c_module () in
  let lock_client i =
    Prog.bind (Prog.call "acq" [ vi 0 ]) (fun _ ->
        Prog.seq (Prog.call "rel" [ vi 0; vi i ]) (Prog.ret (vi i)))
  in
  let threads =
    List.init 4 (fun k -> k + 1, Prog.Module.link m (lock_client (k + 1)))
  in
  let layer = Ticket_lock.l0 () in
  List.map
    (fun engine ->
      let r, ms =
        Ccal_verify.Verify_clock.timed (fun () ->
            Ccal_verify.Budget.value
              (Ccal_verify.Dpor.explore_ctx ~ctx:(vctx ())
                 ~independence:Ccal_verify.Dpor.Commuting_events ~engine
                 ~depth layer threads))
      in
      let s = r.Ccal_verify.Dpor.stats in
      let run =
        {
          engine = E.to_string engine;
          eng_ms = ms;
          eng_runs = s.Ccal_verify.Dpor.schedules_run;
          eng_distinct = s.Ccal_verify.Dpor.distinct_logs;
          eng_sleep = s.Ccal_verify.Dpor.sleep_set_prunes;
          eng_dedup = s.Ccal_verify.Dpor.dedup_hits;
          eng_sym = s.Ccal_verify.Dpor.sym_prunes;
          eng_per_sec =
            float_of_int s.Ccal_verify.Dpor.schedules_run /. (ms /. 1000.);
        }
      in
      Format.printf "  %-22s %-10.1f %-9d %-10d %-8d %-7d %-7d %-12.0f@."
        run.engine run.eng_ms run.eng_runs run.eng_distinct run.eng_sleep
        run.eng_dedup run.eng_sym run.eng_per_sec;
      run)
    [
      E.dpor ~depth;
      E.optimal ~depth ();
      E.optimal ~dedup:true ~depth ();
      E.optimal ~dedup:true ~sym:true ~depth ();
    ]

(* Hand-rolled JSON: the container has no JSON library and we may not add
   one; the schema is flat enough for printf. *)
let write_parallel_json path games engines =
  (* recommended_domains is derived from the measured curve of the largest
     game (argmax speedup, ties toward fewer domains) — a measurement, not
     [Domain.recommended_domain_count], which says nothing about whether
     this workload actually scales on this host. *)
  let recommended =
    let headline =
      List.fold_left
        (fun best g ->
          match best with
          | Some b when b.schedules >= g.schedules -> best
          | _ -> Some g)
        None games
    in
    match headline with
    | None -> 1
    | Some g ->
      Ccal_verify.Parallel.recommend_domains
        (List.map (fun (r, _) -> r.jobs, r.speedup) g.runs)
  in
  let oc = open_out path in
  let out fmt = Printf.fprintf oc fmt in
  out "{\n";
  out "  \"bench\": \"parallel-certificate-checking\",\n";
  out "  \"host_domains\": %d,\n" (Domain.recommended_domain_count ());
  out "  \"minor_heap_words\": %d,\n" parallel_minor_heap;
  out "  \"recommended_domains\": %d,\n" recommended;
  out "  \"games\": [\n";
  List.iteri
    (fun gi g ->
      out "    {\n";
      out "      \"game\": %S,\n" g.game;
      out "      \"depth\": %d,\n" g.depth;
      out "      \"schedules\": %d,\n" g.schedules;
      out "      \"verdicts_agree\": %b,\n" g.verdicts_agree;
      out "      \"runs\": [\n";
      List.iteri
        (fun ri (r, v) ->
          out
            "        {\"jobs\": %d, \"ms\": %.3f, \"schedules_per_sec\": %.1f, \
             \"speedup\": %.3f, \"verdict\": %S}%s\n"
            r.jobs r.ms r.scheds_per_sec r.speedup (verdict_name v)
            (if ri = List.length g.runs - 1 then "" else ","))
        g.runs;
      out "      ]\n";
      out "    }%s\n" (if gi = List.length games - 1 then "" else ","))
    games;
  out "  ],\n";
  out "  \"engines\": {\n";
  out "    \"game\": \"ticket-4t\",\n";
  out "    \"depth\": 8,\n";
  out "    \"independence\": \"events\",\n";
  out "    \"runs\": [\n";
  List.iteri
    (fun ei e ->
      out
        "      {\"engine\": %S, \"ms\": %.3f, \"schedules_run\": %d, \
         \"distinct_logs\": %d, \"sleep_prunes\": %d, \"dedup_hits\": %d, \
         \"sym_prunes\": %d, \"runs_per_sec\": %.1f}%s\n"
        e.engine e.eng_ms e.eng_runs e.eng_distinct e.eng_sleep e.eng_dedup
        e.eng_sym e.eng_per_sec
        (if ei = List.length engines - 1 then "" else ","))
    engines;
  out "    ]\n";
  out "  }\n";
  out "}\n";
  close_out oc;
  Format.printf "@.  wrote %s@." path

(* ------------------------------------------------------------------ *)
(* telemetry — instrumentation overhead and jobs-determinism            *)
(* ------------------------------------------------------------------ *)

(* Two acceptance gates for the telemetry layer (DESIGN.md S25), measured
   on the Llock DPOR bench (3 threads, depth 5):
   - overhead: enabling counters + spans must stay under a few percent of
     the uninstrumented run (budget: 5%);
   - determinism: the counter totals must be bit-identical for jobs=1 and
     jobs=4 — the capture/commit protocol in [Parallel.scan] at work. *)

type telemetry_bench = {
  off_ms : float;
  on_ms : float;
  overhead_pct : float;
  counters_j1 : (string * int) list;
  counters_j4 : (string * int) list;
  counters_equal : bool;
  spans_recorded : int;
}

let run_telemetry_bench () =
  let module V = Ccal_verify in
  let lock_client i =
    Prog.bind (Prog.call "acq" [ vi 0 ]) (fun _ ->
        Prog.seq (Prog.call "rel" [ vi 0; vi i ]) (Prog.ret (vi i)))
  in
  let layer = Lock_intf.layer "Llock" in
  let threads = List.init 3 (fun k -> k + 1, lock_client (k + 1)) in
  let explore jobs = ignore (dpor_explore ~jobs ~depth:5 layer threads) in
  let best f =
    (* best-of-N: the minimum is the least noisy location statistic for a
       deterministic workload *)
    let rec go n acc =
      if n = 0 then acc
      else
        let _, ms = V.Verify_clock.timed f in
        go (n - 1) (Float.min acc ms)
    in
    go 7 infinity
  in
  explore 1 (* warm-up *);
  V.Telemetry.disable ();
  let off_ms = best (fun () -> explore 1) in
  V.Telemetry.enable ();
  let on_ms = best (fun () -> explore 1) in
  let counters_at jobs =
    V.Telemetry.reset ();
    explore jobs;
    V.Telemetry.counters ()
  in
  let counters_j1 = counters_at 1 in
  let counters_j4 = counters_at 4 in
  let spans_recorded = List.length (V.Telemetry.spans ()) in
  V.Telemetry.disable ();
  V.Telemetry.reset ();
  {
    off_ms;
    on_ms;
    overhead_pct = (on_ms -. off_ms) /. off_ms *. 100.;
    counters_j1;
    counters_j4;
    counters_equal = counters_j1 = counters_j4;
    spans_recorded;
  }

let print_telemetry_bench (t : telemetry_bench) =
  Format.printf
    "@.== telemetry: instrumentation overhead and jobs-determinism ==@.@.";
  Format.printf
    "  Llock dpor 3t depth-5: %.3f ms off, %.3f ms on -> %.1f%% overhead \
     (budget 5%%)@."
    t.off_ms t.on_ms t.overhead_pct;
  Format.printf "  counters jobs=1 vs jobs=4: %s@."
    (if t.counters_equal then "identical" else "DIFFER");
  List.iter
    (fun (n, v) -> Format.printf "    %-20s %d@." n v)
    t.counters_j1;
  Format.printf "  spans recorded: %d@." t.spans_recorded

let write_telemetry_json path (t : telemetry_bench) =
  let oc = open_out path in
  let out fmt = Printf.fprintf oc fmt in
  let counters_json cs =
    String.concat ", "
      (List.map (fun (n, v) -> Printf.sprintf "%S: %d" n v) cs)
  in
  out "{\n";
  out "  \"bench\": \"telemetry-overhead\",\n";
  out "  \"game\": \"llock-dpor-3t-depth5\",\n";
  out "  \"off_ms\": %.3f,\n" t.off_ms;
  out "  \"on_ms\": %.3f,\n" t.on_ms;
  out "  \"overhead_pct\": %.2f,\n" t.overhead_pct;
  out "  \"overhead_budget_pct\": 5.0,\n";
  out "  \"counters_jobs1\": {%s},\n" (counters_json t.counters_j1);
  out "  \"counters_jobs4\": {%s},\n" (counters_json t.counters_j4);
  out "  \"counters_equal\": %b,\n" t.counters_equal;
  out "  \"spans_recorded\": %d\n" t.spans_recorded;
  out "}\n";
  close_out oc;
  Format.printf "@.  wrote %s@." path

(* ------------------------------------------------------------------ *)
(* certificate cache — warm vs. cold (DESIGN.md S26)                    *)
(* ------------------------------------------------------------------ *)

(* The cache acceptance gates: a warm [Stack.verify_all] over a populated
   store must (a) produce a canonical report bit-identical to the cold
   run's and (b) finish at least 2x faster.  The bench runs against a
   private temp directory so it never touches (or benefits from) the
   user's ~/.cache/ccal. *)

type cache_bench = {
  cold_ms : float;
  warm_ms : float;
  speedup : float;
  reports_identical : bool;
  cold_stats : Ccal_verify.Cache.session;
  warm_stats : Ccal_verify.Cache.session;
  entries : int;
  bytes : int;
}

let run_cache_bench () =
  let module V = Ccal_verify in
  let dir =
    Filename.concat
      (Filename.get_temp_dir_name ())
      (Printf.sprintf "ccal-bench-cache-%d" (Unix.getpid ()))
  in
  let canonical = function
    | Ok r -> Format.asprintf "%a" V.Stack.pp_report_canonical r
    | Error e -> "ERROR: " ^ e
  in
  ignore (stack_verify ~seeds:2 ()) (* warm-up, outside the cache *);
  let cold_cache = V.Cache.create ~dir () in
  let cold, cold_ms =
    V.Verify_clock.timed (fun () -> stack_verify ~seeds:2 ~cache:cold_cache ())
  in
  let cold_stats = V.Cache.session_stats cold_cache in
  let { V.Cache.entries; bytes } = V.Cache.disk_stats cold_cache in
  let warm_cache = V.Cache.create ~dir () in
  let warm, warm_ms =
    V.Verify_clock.timed (fun () -> stack_verify ~seeds:2 ~cache:warm_cache ())
  in
  let warm_stats = V.Cache.session_stats warm_cache in
  ignore (V.Cache.clear warm_cache);
  (try Unix.rmdir dir with Unix.Unix_error _ -> ());
  {
    cold_ms;
    warm_ms;
    speedup = cold_ms /. warm_ms;
    reports_identical = canonical cold = canonical warm;
    cold_stats;
    warm_stats;
    entries;
    bytes;
  }

let print_cache_bench (c : cache_bench) =
  Format.printf "@.== certificate cache: cold vs. warm (S26) ==@.@.";
  Format.printf
    "  stack verify-all (seeds 2): %.2f ms cold -> %.2f ms warm = %.1fx \
     (gate: >= 2x)@."
    c.cold_ms c.warm_ms c.speedup;
  Format.printf "  canonical reports: %s@."
    (if c.reports_identical then "identical" else "DIFFER");
  Format.printf "  cold: %d hits, %d misses, %d stores@." c.cold_stats.hits
    c.cold_stats.misses c.cold_stats.stores;
  Format.printf "  warm: %d hits, %d misses, %d stores@." c.warm_stats.hits
    c.warm_stats.misses c.warm_stats.stores;
  Format.printf "  store after cold run: %d entries, %d bytes@." c.entries
    c.bytes

let write_cache_json path (c : cache_bench) =
  let oc = open_out path in
  let out fmt = Printf.fprintf oc fmt in
  let session_json (s : Ccal_verify.Cache.session) =
    Printf.sprintf
      "{\"hits\": %d, \"misses\": %d, \"invalidations\": %d, \"stores\": %d}"
      s.hits s.misses s.invalidations s.stores
  in
  out "{\n";
  out "  \"bench\": \"certificate-cache\",\n";
  out "  \"game\": \"stack-verify-all-seeds2\",\n";
  out "  \"cold_ms\": %.3f,\n" c.cold_ms;
  out "  \"warm_ms\": %.3f,\n" c.warm_ms;
  out "  \"speedup\": %.2f,\n" c.speedup;
  out "  \"speedup_gate\": 2.0,\n";
  out "  \"reports_identical\": %b,\n" c.reports_identical;
  out "  \"cold\": %s,\n" (session_json c.cold_stats);
  out "  \"warm\": %s,\n" (session_json c.warm_stats);
  out "  \"entries\": %d,\n" c.entries;
  out "  \"bytes\": %d\n" c.bytes;
  out "}\n";
  close_out oc;
  Format.printf "@.  wrote %s@." path

(* ------------------------------------------------------------------ *)
(* robust — budgets, cancellation and fault injection (DESIGN.md S27)   *)
(* ------------------------------------------------------------------ *)

(* Three acceptance gates for the robustness layer:
   - overhead: a checker run with an armed (but never-tripping) budget
     must stay within 5% of the budgets-disabled run — the token polling
     and private-allowance bookkeeping are the only difference;
   - fault determinism: injected worker crashes and clock skew must not
     change any verdict, on any jobs count (the pool's requeue path and
     the monotone skewed clock at work);
   - budget determinism: a pure step budget must truncate the scan at the
     same schedule prefix for every jobs count, with graceful degradation
     as the budget grows. *)

type robust_bench = {
  off_ms : float;  (** budgets disabled *)
  on_ms : float;  (** huge budget armed, never trips *)
  overhead_pct : float;
  fault_free_verdict : string;
  fault_verdicts : (int * string) list;  (** per jobs count *)
  faults_deterministic : bool;
  budget_rows : (int * string) list;  (** step budget -> verdict *)
  budget_scans_agree : bool;  (** each row identical on jobs {1,2,4,7} *)
}

let robust_jobs = [ 1; 2; 4; 7 ]

let robust_game () =
  let lock_client i =
    Prog.bind (Prog.call "acq" [ vi 0 ]) (fun _ ->
        Prog.seq (Prog.call "rel" [ vi 0; vi i ]) (Prog.ret (vi i)))
  in
  let m = Mcs_lock.c_module () in
  ( Mcs_lock.l0 (),
    List.init 3 (fun k -> k + 1, Prog.Module.link m (lock_client (k + 1))) )

let run_robust_bench () =
  let module V = Ccal_verify in
  let layer, threads = robust_game () in
  let tids = List.map fst threads in
  let depth = 5 in
  let check ctx =
    (* fresh suite per run: trace schedulers are single-use *)
    V.Races.check_ctx ~ctx ~max_steps:200_000
      ~scheds:(V.Explore.exhaustive_scheds ~tids ~depth)
      layer threads
  in
  let best f =
    let rec go n acc =
      if n = 0 then acc
      else
        let _, ms = V.Verify_clock.timed f in
        go (n - 1) (Float.min acc ms)
    in
    go 5 infinity
  in
  ignore (check V.Ctx.default) (* warm-up *);
  let off_ms = best (fun () -> ignore (check V.Ctx.default)) in
  let armed () =
    V.Ctx.with_budget (V.Budget.make ~ms:1e12 ~steps:max_int ()) V.Ctx.default
  in
  let on_ms = best (fun () -> ignore (check (armed ()))) in
  let plan =
    match V.Fault.parse "crash:0.25,skew:0.2,seed:7" with
    | Ok p -> p
    | Error _ -> V.Fault.none
  in
  let fault_free_verdict = verdict_name (check V.Ctx.default) in
  let fault_verdicts =
    List.map
      (fun jobs ->
        jobs, verdict_name (check (V.Ctx.with_faults plan (vctx ~jobs ()))))
      robust_jobs
  in
  let faults_deterministic =
    List.for_all (fun (_, v) -> v = fault_free_verdict) fault_verdicts
  in
  let budgeted_verdict ~jobs steps =
    check (V.Ctx.with_budget (V.Budget.make ~steps ()) (vctx ~jobs ()))
  in
  let budget_steps = [ 200; 2_000; 20_000 ] in
  let budget_rows =
    List.map
      (fun s -> s, verdict_name (budgeted_verdict ~jobs:1 s))
      budget_steps
  in
  let budget_scans_agree =
    List.for_all2
      (fun s (_, v1) ->
        List.for_all
          (fun jobs -> verdict_name (budgeted_verdict ~jobs s) = v1)
          (List.filter (fun j -> j <> 1) robust_jobs))
      budget_steps budget_rows
  in
  {
    off_ms;
    on_ms;
    overhead_pct = (on_ms -. off_ms) /. off_ms *. 100.;
    fault_free_verdict;
    fault_verdicts;
    faults_deterministic;
    budget_rows;
    budget_scans_agree;
  }

let print_robust_bench (r : robust_bench) =
  Format.printf
    "@.== robust: budgets and fault injection (mcs-lock-3t depth-5) ==@.@.";
  Format.printf
    "  budget machinery: %.2f ms disabled, %.2f ms armed -> %.1f%% overhead \
     (budget 5%%)@."
    r.off_ms r.on_ms r.overhead_pct;
  Format.printf "  fault-free verdict: %s@." r.fault_free_verdict;
  List.iter
    (fun (jobs, v) ->
      Format.printf "  crash:0.25,skew:0.2 %@ jobs=%d: %s@." jobs v)
    r.fault_verdicts;
  Format.printf "  fault verdicts %s the fault-free run@."
    (if r.faults_deterministic then "match" else "DIFFER FROM");
  List.iter
    (fun (steps, v) -> Format.printf "  step budget %-7d -> %s@." steps v)
    r.budget_rows;
  Format.printf "  budget truncation across jobs {%s}: %s@."
    (String.concat ", " (List.map string_of_int robust_jobs))
    (if r.budget_scans_agree then "identical" else "DIFFERS")

let write_robust_json path (r : robust_bench) =
  let oc = open_out path in
  let out fmt = Printf.fprintf oc fmt in
  out "{\n";
  out "  \"bench\": \"robust-budgets-and-faults\",\n";
  out "  \"game\": \"mcs-lock-3t-depth5\",\n";
  out "  \"off_ms\": %.3f,\n" r.off_ms;
  out "  \"on_ms\": %.3f,\n" r.on_ms;
  out "  \"overhead_pct\": %.2f,\n" r.overhead_pct;
  out "  \"overhead_budget_pct\": 5.0,\n";
  out "  \"fault_plan\": \"crash:0.25,skew:0.2,seed:7\",\n";
  out "  \"fault_free_verdict\": %S,\n" r.fault_free_verdict;
  out "  \"fault_verdicts\": [\n";
  List.iteri
    (fun i (jobs, v) ->
      out "    {\"jobs\": %d, \"verdict\": %S}%s\n" jobs v
        (if i = List.length r.fault_verdicts - 1 then "" else ","))
    r.fault_verdicts;
  out "  ],\n";
  out "  \"faults_deterministic\": %b,\n" r.faults_deterministic;
  out "  \"budget_rows\": [\n";
  List.iteri
    (fun i (steps, v) ->
      out "    {\"budget_steps\": %d, \"verdict\": %S}%s\n" steps v
        (if i = List.length r.budget_rows - 1 then "" else ","))
    r.budget_rows;
  out "  ],\n";
  out "  \"budget_scans_agree\": %b\n" r.budget_scans_agree;
  out "}\n";
  close_out oc;
  Format.printf "@.  wrote %s@." path

(* ------------------------------------------------------------------ *)
(* kv — YCSB-style throughput over the certified kv stack (S28)         *)
(* ------------------------------------------------------------------ *)

(* The serving-stack bench: each thread runs a seeded read/write mix over
   the sharded hash table (the certified implementation, interpreted over
   the lock layer), under round-robin and random schedules.  Reported
   ops/sec is end-to-end interpreter throughput — what certification
   itself pays per replayed schedule — so the thread axis shows how the
   per-op cost grows with the log (replay functions are O(|log|)), not
   hardware parallelism: the game interpreter is sequential by design. *)

type kv_run = {
  kv_threads : int;
  kv_ms : float;
  kv_ops_per_sec : float;
  kv_events : int;
}

type kv_mix = { read_pct : int; kv_runs : kv_run list }

let kv_shards = 4
let kv_ops_per_thread = 50
let kv_keyspace = 16
let kv_thread_counts = [ 1; 2; 4; 8 ]

let run_kv_mix ~read_pct =
  let module K = Ccal_kv.Kv_stack in
  let one threads =
    let game () =
      K.ycsb_game ~shards:kv_shards ~threads ~read_pct ~ops:kv_ops_per_thread
        ~keyspace:kv_keyspace ()
    in
    let play sched =
      let layer, ts = game () in
      Game.run (Game.config ~max_steps:5_000_000 layer ts sched)
    in
    ignore (play Sched.round_robin) (* warm-up *);
    let outcomes, ms =
      Ccal_verify.Verify_clock.timed (fun () ->
          [ play Sched.round_robin; play (Sched.random ~seed:7) ])
    in
    List.iter
      (fun (o : Game.outcome) ->
        match o.Game.status with
        | Game.All_done -> ()
        | s ->
          Format.printf "  kv game did not finish: %a@." Game.pp_status s)
      outcomes;
    let total_ops = 2 * threads * kv_ops_per_thread in
    let events =
      List.fold_left (fun n (o : Game.outcome) -> n + Log.length o.Game.log) 0
        outcomes
    in
    {
      kv_threads = threads;
      kv_ms = ms;
      kv_ops_per_sec = float_of_int total_ops /. (ms /. 1000.);
      kv_events = events;
    }
  in
  { read_pct; kv_runs = List.map one kv_thread_counts }

let run_kv_bench () = List.map (fun p -> run_kv_mix ~read_pct:p) [ 95; 50 ]

let print_kv_bench mixes =
  Format.printf
    "@.== kv: YCSB-style throughput over the certified kv stack (S28) ==@.@.";
  Format.printf
    "  shards %d, %d ops/thread, keyspace %d; round-robin + random schedules@.@."
    kv_shards kv_ops_per_thread kv_keyspace;
  Format.printf "  %-10s %-9s %-10s %-12s %-8s@." "mix" "threads" "ms"
    "ops/sec" "events";
  List.iter
    (fun m ->
      List.iter
        (fun r ->
          Format.printf "  %2d/%-7d %-9d %-10.1f %-12.0f %-8d@." m.read_pct
            (100 - m.read_pct) r.kv_threads r.kv_ms r.kv_ops_per_sec
            r.kv_events)
        m.kv_runs)
    mixes;
  Format.printf
    "@.  shape: ops/sec falls as threads grow — the log lengthens and every \
     replayed@.  primitive rescans it (the Sec. 7 replay-cost story at the \
     service level)@."

let write_kv_json path mixes =
  let oc = open_out path in
  let out fmt = Printf.fprintf oc fmt in
  out "{\n";
  out "  \"bench\": \"kv-ycsb\",\n";
  out "  \"shards\": %d,\n" kv_shards;
  out "  \"ops_per_thread\": %d,\n" kv_ops_per_thread;
  out "  \"keyspace\": %d,\n" kv_keyspace;
  out "  \"mixes\": [\n";
  List.iteri
    (fun mi m ->
      out "    {\n";
      out "      \"read_pct\": %d,\n" m.read_pct;
      out "      \"runs\": [\n";
      List.iteri
        (fun ri r ->
          out
            "        {\"threads\": %d, \"ms\": %.3f, \"ops_per_sec\": %.1f, \
             \"events\": %d}%s\n"
            r.kv_threads r.kv_ms r.kv_ops_per_sec r.kv_events
            (if ri = List.length m.kv_runs - 1 then "" else ","))
        m.kv_runs;
      out "      ]\n";
      out "    }%s\n" (if mi = List.length mixes - 1 then "" else ","))
    mixes;
  out "  ]\n";
  out "}\n";
  close_out oc;
  Format.printf "@.  wrote %s@." path

(* ------------------------------------------------------------------ *)
(* tso — dual-mode certification and litmus conformance (S29)           *)
(* ------------------------------------------------------------------ *)

(* Two tables for EXPERIMENTS.md:
   - cert rows: the same certificate built under SC and under x86-TSO
     (store buffers, drain environments, flusher moves) — the cost of
     promoting the memory model from an assumption to a checked input;
   - litmus rows: the conformance suite, timing the reachable-outcome
     enumeration per mode and pinning observed = expected. *)

type tso_cert_row = {
  tso_obj : string;
  sc_ms : float;
  sc_checks : int;
  tso_ms : float;
  tso_checks : int;
}

type tso_litmus_row = {
  lit_name : string;
  lit_sc : int;  (** distinct outcomes reached under SC *)
  lit_tso : int;  (** distinct outcomes reached under TSO *)
  lit_ok : bool;  (** observed = expected, both modes *)
  lit_ms : float;
}

type tso_bench = {
  cert_rows : tso_cert_row list;
  litmus_rows : tso_litmus_row list;
}

let run_tso_bench () =
  let module V = Ccal_verify in
  let cert name certify =
    let sc, sc_ms = timed (fun () -> certify Memory.Sc) in
    let tso, tso_ms = timed (fun () -> certify Memory.Tso) in
    let checks = function
      | Ok c -> Calculus.count_checks c
      | Error _ -> -1
    in
    {
      tso_obj = name;
      sc_ms;
      sc_checks = checks sc;
      tso_ms;
      tso_checks = checks tso;
    }
  in
  let cert_rows =
    [
      cert "Ticket lock" (fun memory ->
          Ticket_lock.certify ~memory ~focus:[ 1; 2 ] ());
      cert "MCS lock" (fun memory ->
          Mcs_lock.certify ~memory ~focus:[ 1; 2 ] ());
      cert "Queue stack" (fun memory ->
          Queue_shared.full_stack_certify ~memory ());
    ]
  in
  let ctx = vctx () in
  let litmus_rows =
    List.map
      (fun (t : Ccal_machine.Litmus.test) ->
        let pair, ms =
          timed (fun () ->
              ( V.Litmus.run_test ~ctx:(V.Ctx.with_memory Memory.Sc ctx) t,
                V.Litmus.run_test ~ctx:(V.Ctx.with_memory Memory.Tso ctx) t ))
        in
        let sc_r, tso_r = pair in
        {
          lit_name = t.Ccal_machine.Litmus.name;
          lit_sc = List.length sc_r.V.Litmus.observed;
          lit_tso = List.length tso_r.V.Litmus.observed;
          lit_ok = V.Litmus.ok sc_r && V.Litmus.ok tso_r;
          lit_ms = ms;
        })
      Ccal_machine.Litmus.tests
  in
  { cert_rows; litmus_rows }

let print_tso_bench (b : tso_bench) =
  Format.printf
    "@.== tso: dual-mode certification cost (SC vs x86-TSO, S29) ==@.@.";
  Format.printf "  %-14s %10s %9s %10s %9s %7s@." "Object" "sc checks" "sc ms"
    "tso checks" "tso ms" "ratio";
  List.iter
    (fun r ->
      Format.printf "  %-14s %10d %9.1f %10d %9.1f %7.2f@." r.tso_obj
        r.sc_checks r.sc_ms r.tso_checks r.tso_ms
        (r.tso_ms /. Float.max 0.001 r.sc_ms))
    b.cert_rows;
  Format.printf
    "@.== tso: litmus conformance (distinct reachable outcomes per mode) \
     ==@.@.";
  Format.printf "  %-10s %6s %6s %6s %9s@." "test" "sc" "tso" "ok" "ms";
  List.iter
    (fun r ->
      Format.printf "  %-10s %6d %6d %6b %9.1f@." r.lit_name r.lit_sc r.lit_tso
        r.lit_ok r.lit_ms)
    b.litmus_rows;
  Format.printf
    "@.  shape: SB and R gain exactly one TSO-only outcome; the fenced \
     variants@.  re-converge; everything else (incl. IRIW) coincides with \
     SC@."

let write_tso_json path (b : tso_bench) =
  let oc = open_out path in
  let out fmt = Printf.fprintf oc fmt in
  out "{\n";
  out "  \"bench\": \"tso-dual-mode\",\n";
  out "  \"certificates\": [\n";
  List.iteri
    (fun i r ->
      out
        "    {\"object\": %S, \"sc_checks\": %d, \"sc_ms\": %.3f, \
         \"tso_checks\": %d, \"tso_ms\": %.3f}%s\n"
        r.tso_obj r.sc_checks r.sc_ms r.tso_checks r.tso_ms
        (if i = List.length b.cert_rows - 1 then "" else ","))
    b.cert_rows;
  out "  ],\n";
  out "  \"litmus\": [\n";
  List.iteri
    (fun i r ->
      out
        "    {\"test\": %S, \"sc_outcomes\": %d, \"tso_outcomes\": %d, \
         \"conforms\": %b, \"ms\": %.3f}%s\n"
        r.lit_name r.lit_sc r.lit_tso r.lit_ok r.lit_ms
        (if i = List.length b.litmus_rows - 1 then "" else ","))
    b.litmus_rows;
  out "  ]\n";
  out "}\n";
  close_out oc;
  Format.printf "@.  wrote %s@." path

(* ------------------------------------------------------------------ *)
(* crash — crash-refinement certification and recovery cost (S30)       *)
(* ------------------------------------------------------------------ *)

(* Two tables for EXPERIMENTS.md:
   - edge rows: the crash-refinement certificate per edge (schedules x
     crash points x masks = recoveries), with the jobs {1,4} determinism
     gate applied to the canonical report;
   - recover rows: the recovery-scan micro-cost as the surviving log
     grows — recovery is O(records), the crash-safety analogue of the
     Sec. 7 replay-cost story. *)

type crash_edge_row = {
  ce_name : string;
  ce_schedules : int;
  ce_points : int;
  ce_recoveries : int;
  ce_ms : float;
}

type crash_recover_row = { cr_records : int; cr_ns : float }

type crash_bench = {
  crash_edges : crash_edge_row list;
  crash_identical : bool;  (** canonical report, jobs 1 vs 4 *)
  crash_recover : crash_recover_row list;
}

let run_crash_bench () =
  let module V = Ccal_verify in
  let module D = Ccal_disk in
  let edges () = [ D.Wal.crash_edge (); D.Durable_kv.crash_edge () ] in
  let report jobs =
    match V.Budget.value (V.Crash.check_ctx ~ctx:(vctx ~jobs ()) (edges ())) with
    | Ok r -> r
    | Error f -> failwith (Format.asprintf "%a" V.Crash.pp_failure f)
  in
  ignore (report 1) (* warm-up *);
  let r1 = report 1 in
  let r4 = report 4 in
  let canonical r = Format.asprintf "%a" V.Crash.pp_report_canonical r in
  let crash_edges =
    List.map
      (fun (e : V.Crash.edge_report) ->
        {
          ce_name = e.V.Crash.edge_name;
          ce_schedules = e.V.Crash.schedules;
          ce_points = e.V.Crash.crash_points;
          ce_recoveries = e.V.Crash.recoveries;
          ce_ms = e.V.Crash.millis;
        })
      r1.V.Crash.edges
  in
  let recover_at n =
    let st =
      D.Disk.of_durable
        (List.init n (fun i ->
             let o = { D.Wal.lsn = i + 1; key = i; value = 10 * i } in
             (i + 1, D.Wal.record o)))
    in
    let iters = 1_000 in
    let t0 = Unix.gettimeofday () in
    for _ = 1 to iters do
      ignore (D.Wal.recover st)
    done;
    let ns = (Unix.gettimeofday () -. t0) *. 1e9 /. float_of_int iters in
    { cr_records = n; cr_ns = ns }
  in
  {
    crash_edges;
    crash_identical = canonical r1 = canonical r4;
    crash_recover = List.map recover_at [ 10; 50; 100; 500; 1000 ];
  }

let print_crash_bench (b : crash_bench) =
  Format.printf
    "@.== crash: crash-refinement certification (DESIGN.md S30) ==@.@.";
  Format.printf "  %-14s %10s %13s %12s %9s@." "edge" "schedules"
    "crash points" "recoveries" "ms";
  List.iter
    (fun r ->
      Format.printf "  %-14s %10d %13d %12d %9.1f@." r.ce_name r.ce_schedules
        r.ce_points r.ce_recoveries r.ce_ms)
    b.crash_edges;
  Format.printf "  canonical reports jobs 1 vs 4: %s@."
    (if b.crash_identical then "identical" else "DIFFER");
  Format.printf "@.== crash: recovery-scan cost vs. surviving log ==@.@.";
  Format.printf "  %-10s %-16s@." "records" "ns per recover";
  List.iter
    (fun r -> Format.printf "  %-10d %-16.0f@." r.cr_records r.cr_ns)
    b.crash_recover;
  Format.printf
    "  shape: linear in the surviving records — recovery rescans the \
     platter prefix@."

let write_crash_json path (b : crash_bench) =
  let oc = open_out path in
  let out fmt = Printf.fprintf oc fmt in
  out "{\n";
  out "  \"bench\": \"crash-refinement\",\n";
  out "  \"reports_identical_jobs_1_4\": %b,\n" b.crash_identical;
  out "  \"edges\": [\n";
  List.iteri
    (fun i r ->
      out
        "    {\"edge\": %S, \"schedules\": %d, \"crash_points\": %d, \
         \"recoveries\": %d, \"ms\": %.3f}%s\n"
        r.ce_name r.ce_schedules r.ce_points r.ce_recoveries r.ce_ms
        (if i = List.length b.crash_edges - 1 then "" else ","))
    b.crash_edges;
  out "  ],\n";
  out "  \"recover\": [\n";
  List.iteri
    (fun i r ->
      out "    {\"records\": %d, \"ns_per_recover\": %.1f}%s\n" r.cr_records
        r.cr_ns
        (if i = List.length b.crash_recover - 1 then "" else ","))
    b.crash_recover;
  out "  ]\n";
  out "}\n";
  close_out oc;
  Format.printf "@.  wrote %s@." path

(* ------------------------------------------------------------------ *)
(* Bechamel micro/macro benchmarks                                      *)
(* ------------------------------------------------------------------ *)

let make_tests (ghost_layer, ghost_m, clean_layer, clean_m) =
  Test.make_grouped ~name:"ccal"
    [
      (* perf_lock (Sec. 6): one acq+rel round on a single core *)
      Test.make ~name:"perf_lock/ghost-primitives"
        (Staged.stage (fun () -> ignore (lock_round ghost_layer ghost_m)));
      Test.make ~name:"perf_lock/erased"
        (Staged.stage (fun () -> ignore (lock_round clean_layer clean_m)));
      (* tab2: certification cost per object *)
      Test.make ~name:"tab2/ticket-certify"
        (Staged.stage (fun () ->
             ignore (Ticket_lock.certify ~focus:[ 1 ] ())));
      Test.make ~name:"tab2/mcs-certify"
        (Staged.stage (fun () -> ignore (Mcs_lock.certify ~focus:[ 1 ] ())));
      Test.make ~name:"tab2/local-queue-certify"
        (Staged.stage (fun () -> ignore (Queue_local.certify ())));
      Test.make ~name:"tab2/shared-queue-certify"
        (Staged.stage (fun () -> ignore (Queue_shared.certify ~focus:[ 1 ] ())));
      Test.make ~name:"tab2/qlock-certify"
        (Staged.stage (fun () -> ignore (Qlock.certify ~focus:[ 1 ] ())));
      Test.make ~name:"tab2/ipc-certify"
        (Staged.stage (fun () -> ignore (Ipc.certify ~focus:[ 1 ] ())));
      (* tab1: the toolkit self-check *)
      Test.make ~name:"tab1/toolkit-selfcheck"
        (Staged.stage (fun () -> ignore (stack_verify ~seeds:1 ())));
      (* fig1: the whole Fig. 1 stack *)
      Test.make ~name:"fig1_stack/verify-all"
        (Staged.stage (fun () -> ignore (stack_verify ~seeds:2 ())));
      (* fig5: the ticket-lock pipeline incl. soundness *)
      Test.make ~name:"fig5_pipeline/certify+soundness"
        (Staged.stage (fun () ->
             match Ticket_lock.certify ~focus:[ 1; 2 ] () with
             | Error _ -> ()
             | Ok cert ->
               let client i =
                 Prog.bind (Prog.call "acq" [ vi 0 ]) (fun _ ->
                     Prog.seq (Prog.call "rel" [ vi 0; vi i ]) (Prog.ret (vi i)))
               in
               ignore
                 (Refinement.check_cert cert ~client
                    ~scheds:(Sched.default_suite ~seeds:2))));
    ]

let run_benchmarks tests =
  let ols =
    Analyze.ols ~r_square:true ~bootstrap:0 ~predictors:[| Measure.run |]
  in
  let instance = Instance.monotonic_clock in
  let cfg = Benchmark.cfg ~limit:2_000 ~quota:(Time.second 1.0) ~kde:None () in
  let raw = Benchmark.all cfg [ instance ] tests in
  let results = Analyze.all ols instance raw in
  Format.printf "@.== Bechamel timings (ns per run, OLS estimate) ==@.@.";
  let rows =
    Hashtbl.fold
      (fun name ols_result acc ->
        let est =
          match Analyze.OLS.estimates ols_result with
          | Some (v :: _) -> v
          | _ -> nan
        in
        (name, est) :: acc)
      results []
    |> List.sort compare
  in
  List.iter
    (fun (name, est) ->
      if est < 1_000. then Format.printf "  %-40s %12.0f ns@." name est
      else if est < 1_000_000. then Format.printf "  %-40s %12.1f us@." name (est /. 1e3)
      else Format.printf "  %-40s %12.2f ms@." name (est /. 1e6))
    rows;
  rows

(* `--robust-only` runs just the S27 robustness section and writes
   BENCH_robust.json — the CI robustness leg uses it to avoid the full
   Bechamel sweep. *)
let robust_only = Array.exists (String.equal "--robust-only") Sys.argv

(* `--parallel-only` runs just the domain-pool scaling section and writes
   BENCH_parallel.json — the CI perf-gate leg uses it to regenerate the
   scaling curve without the full sweep. *)
let parallel_only = Array.exists (String.equal "--parallel-only") Sys.argv

(* `--kv-only` runs just the S28 kv serving-stack section and writes
   BENCH_kv.json — the CI kv leg uses it. *)
let kv_only = Array.exists (String.equal "--kv-only") Sys.argv

(* `--tso-only` runs just the S29 dual-mode (SC vs x86-TSO) section and
   writes BENCH_tso.json — the CI memory-model leg uses it. *)
let tso_only = Array.exists (String.equal "--tso-only") Sys.argv

(* `--crash-only` runs just the S30 crash-refinement section and writes
   BENCH_crash.json — the CI crash leg uses it. *)
let crash_only = Array.exists (String.equal "--crash-only") Sys.argv

let () =
  if crash_only then begin
    Format.printf "=== CCAL crash-refinement benchmark (DESIGN.md S30) ===@.";
    let crash = run_crash_bench () in
    print_crash_bench crash;
    write_crash_json "BENCH_crash.json" crash;
    Format.printf "@.done.@.";
    exit 0
  end;
  if tso_only then begin
    Format.printf "=== CCAL memory-model benchmark (DESIGN.md S29) ===@.";
    let tso = run_tso_bench () in
    print_tso_bench tso;
    write_tso_json "BENCH_tso.json" tso;
    Format.printf "@.done.@.";
    exit 0
  end;
  if kv_only then begin
    Format.printf "=== CCAL kv serving-stack benchmark (DESIGN.md S28) ===@.";
    let mixes = run_kv_bench () in
    print_kv_bench mixes;
    write_kv_json "BENCH_kv.json" mixes;
    Format.printf "@.done.@.";
    exit 0
  end;
  if parallel_only then begin
    Format.printf "=== CCAL parallel scaling benchmark (DESIGN.md S24) ===@.";
    let scaling = run_parallel_scaling () in
    let engines = run_engine_bench () in
    write_parallel_json "BENCH_parallel.json" scaling engines;
    Format.printf "@.done.@.";
    exit 0
  end;
  if robust_only then begin
    Format.printf "=== CCAL robustness benchmark (DESIGN.md S27) ===@.";
    let robust = run_robust_bench () in
    print_robust_bench robust;
    write_robust_json "BENCH_robust.json" robust;
    Format.printf "@.done.@.";
    exit 0
  end;
  Format.printf "=== CCAL reproduction benchmarks (PLDI'18, Sec. 6) ===@.";
  print_tab1 ();
  let rows = tab2_rows () in
  print_tab2 rows;
  let perf = print_perf_lock () in
  print_contention_sweep ();
  print_replay_ablation ();
  print_exploration_ablation ();
  print_dpor_ablation ();
  let scaling = run_parallel_scaling () in
  let engines = run_engine_bench () in
  write_parallel_json "BENCH_parallel.json" scaling engines;
  let telemetry = run_telemetry_bench () in
  print_telemetry_bench telemetry;
  write_telemetry_json "BENCH_telemetry.json" telemetry;
  let cache = run_cache_bench () in
  print_cache_bench cache;
  write_cache_json "BENCH_cache.json" cache;
  let robust = run_robust_bench () in
  print_robust_bench robust;
  write_robust_json "BENCH_robust.json" robust;
  let kv = run_kv_bench () in
  print_kv_bench kv;
  write_kv_json "BENCH_kv.json" kv;
  let tso = run_tso_bench () in
  print_tso_bench tso;
  write_tso_json "BENCH_tso.json" tso;
  let crash = run_crash_bench () in
  print_crash_bench crash;
  write_crash_json "BENCH_crash.json" crash;
  let bench_rows = run_benchmarks (make_tests perf) in
  (* headline ratio, from wall-clock *)
  (match
     ( List.assoc_opt "ccal/perf_lock/ghost-primitives" bench_rows,
       List.assoc_opt "ccal/perf_lock/erased" bench_rows )
   with
  | Some g, Some e when e > 0. ->
    Format.printf
      "@.perf_lock headline: ghost/erased wall-clock ratio = %.2fx (paper: 87/35 = 2.49x)@."
      (g /. e)
  | _ -> ());
  Format.printf "@.done.@."
